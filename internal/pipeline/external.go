package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"repro/internal/dataset"
)

// maxExternalOutput caps how much of the program's stdout and stderr is
// read: a well-behaved scorer prints one float, so anything beyond 1 MiB is
// a runaway process whose output must not exhaust memory.
const maxExternalOutput = 1 << 20

// failureRingSize bounds how many recent failure reasons External retains
// for post-mortem diagnostics.
const failureRingSize = 16

// External treats an external program as the black-box system: each
// malfunction evaluation pipes the candidate dataset to the program as CSV
// on stdin and parses a single float in [0,1] from its stdout.
//
// Failures are classified, not collapsed (TryMalfunctionScore):
//
//   - deterministic malfunction, score 1: the process ran and exited
//     non-zero, or spoke an invalid protocol (unparsable or out-of-range
//     score). The system crashed on the data — the extreme malfunction of
//     Definition 3 (the paper's "system crash due to invalid input
//     combination" failure class). The score is trustworthy and cacheable.
//   - transient failure, no score: timeout (the paper's Example 2), an
//     exec/fork-level error (the scorer never ran), a cancelled context, or
//     truncated output. Retrying may succeed; caching would poison.
//   - permanent failure, no score: misconfiguration (no command, CSV
//     encoding error). Retrying is pointless.
//
// The legacy System/ContextSystem entry points keep their historical
// contract of scoring 1 on any failure. Failure reasons are retained in a
// bounded ring (RecentFailures) and, optionally, reported through Logf.
type External struct {
	// Command is the program and its arguments.
	Command []string
	// Timeout bounds one evaluation; zero means 30 seconds. A timeout is
	// a transient failure under the fallible contract and scores 1 under
	// the legacy one.
	Timeout time.Duration
	// Logf, when set, receives a diagnostic line for every failed
	// evaluation (timeout, non-zero exit, unparsable or out-of-range
	// output). Useful for surfacing misconfigured scorer commands that
	// would otherwise silently score 1 forever.
	Logf func(format string, args ...any)

	mu          sync.Mutex
	lastFailure string
	ring        [failureRingSize]string
	ringN       int // total failures ever recorded
}

// Name implements System.
func (s *External) Name() string { return strings.Join(s.Command, " ") }

// MalfunctionScore implements System, evaluating under a background context
// bounded only by Timeout.
func (s *External) MalfunctionScore(d *dataset.Dataset) float64 {
	return s.MalfunctionScoreCtx(context.Background(), d)
}

// MalfunctionScoreCtx evaluates the external program under the caller's
// context: cancelling ctx kills the in-flight process, so deadlined or
// cancelled searches stop promptly instead of waiting out Timeout. Any
// failure — transient or not — scores 1, the legacy contract; use
// TryMalfunctionScore to tell them apart.
func (s *External) MalfunctionScoreCtx(ctx context.Context, d *dataset.Dataset) float64 {
	r := s.TryMalfunctionScore(ctx, d)
	if r.Err != nil {
		return 1
	}
	return r.Score
}

// TryMalfunctionScore implements FallibleSystem with the failure taxonomy
// described on External.
func (s *External) TryMalfunctionScore(ctx context.Context, d *dataset.Dataset) ScoreResult {
	if len(s.Command) == 0 {
		return s.permanent("no command configured")
	}
	var input bytes.Buffer
	if err := d.WriteCSV(&input); err != nil {
		return s.permanent("CSV encoding failed: %v", err)
	}
	timeout := s.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	parent := ctx
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, s.Command[0], s.Command[1:]...)
	// Without a wait delay, a killed scorer whose grandchildren still hold
	// the stdout pipe would stall Run() until they exit; give up on the
	// pipes one second after cancellation or process exit.
	cmd.WaitDelay = time.Second
	cmd.Stdin = &input
	var stdout, stderr cappedBuffer
	stdout.limit, stderr.limit = maxExternalOutput, maxExternalOutput
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err != nil {
		var exitErr *exec.ExitError
		switch {
		case parent.Err() != nil:
			// The caller's context expired or was cancelled — not this
			// evaluation's own Timeout. ContextFailure keeps the context
			// sentinel errors.Is-visible alongside any cancel cause.
			return s.transient("cancelled: %w", ContextFailure(parent))
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			return s.transient("timeout after %v%s", timeout, stderrExcerpt(&stderr))
		case ctx.Err() != nil:
			return s.transient("cancelled: %w", ContextFailure(ctx))
		case errors.As(err, &exitErr):
			// The process ran to completion and exited non-zero: it crashed
			// on this input, which is deterministic in the data.
			return s.deterministic("process failed: %v%s", err, stderrExcerpt(&stderr))
		default:
			// exec/fork-level failure: the scorer never ran, so the data is
			// not implicated.
			return s.transient("exec failed: %v", err)
		}
	}
	if stdout.truncated {
		return s.transient("truncated output: stdout exceeded %d bytes", maxExternalOutput)
	}
	out := strings.TrimSpace(stdout.buf.String())
	score, err := strconv.ParseFloat(out, 64)
	if err != nil {
		return s.deterministic("unparsable score %q%s", clip(out, 80), stderrExcerpt(&stderr))
	}
	if score < 0 || score > 1 {
		return s.deterministic("score %v outside [0,1]", score)
	}
	s.mu.Lock()
	s.lastFailure = ""
	s.mu.Unlock()
	return ScoreResult{Score: score, Attempts: 1}
}

// LastFailure reports why the most recent evaluation failed (timeout,
// process failure, or parse failure), or "" if it succeeded.
func (s *External) LastFailure() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastFailure
}

// RecentFailures returns up to n recent failure reasons, newest first. The
// ring survives successful evaluations and concurrent batches, so the tail
// of a flaky run is available for post-mortem diagnostics even when the
// final evaluation succeeded.
func (s *External) RecentFailures(n int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	stored := s.ringN
	if stored > failureRingSize {
		stored = failureRingSize
	}
	if n > stored {
		n = stored
	}
	out := make([]string, 0, max(n, 0))
	for i := 0; i < n; i++ {
		out = append(out, s.ring[(s.ringN-1-i)%failureRingSize])
	}
	return out
}

// record stores the failure reason in LastFailure and the diagnostic ring,
// and emits it through Logf when configured.
func (s *External) record(format string, args ...any) string {
	reason := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.lastFailure = reason
	s.ring[s.ringN%failureRingSize] = reason
	s.ringN++
	s.mu.Unlock()
	if s.Logf != nil {
		s.Logf("external system %q: %s", s.Name(), reason)
	}
	return reason
}

// transient records the reason and returns a retryable measurement failure.
func (s *External) transient(format string, args ...any) ScoreResult {
	// Errorf rather than Sprintf so %w verbs in format wrap their operands:
	// the cancellation paths pass ContextFailure(ctx) and must keep
	// context.Canceled / context.DeadlineExceeded errors.Is-visible.
	reasonErr := fmt.Errorf(format, args...)
	s.record("%s", reasonErr)
	return ScoreResult{
		Score:     math.NaN(),
		Err:       fmt.Errorf("%w: %w", reasonErr, ErrTransient),
		Transient: true,
		Attempts:  1,
	}
}

// permanent records the reason and returns a non-retryable failure.
func (s *External) permanent(format string, args ...any) ScoreResult {
	reason := s.record(format, args...)
	return ScoreResult{Score: math.NaN(), Err: errors.New(reason), Attempts: 1}
}

// deterministic records the reason and returns the extreme malfunction
// score: the system demonstrably crashed on this exact input.
func (s *External) deterministic(format string, args ...any) ScoreResult {
	s.record(format, args...)
	return ScoreResult{Score: 1, Deterministic: true, Attempts: 1}
}

// stderrExcerpt renders a short stderr tail for diagnostics.
func stderrExcerpt(b *cappedBuffer) string {
	msg := strings.TrimSpace(b.buf.String())
	if msg == "" {
		return ""
	}
	return "; stderr: " + clip(msg, 256)
}

// clip truncates s to at most n bytes plus an ellipsis, backing off to a
// rune boundary so a multi-byte character is never split mid-sequence.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	return s[:n] + "…"
}

// cappedBuffer collects writer output up to a byte limit, discarding (but
// flagging) the excess so a runaway child process cannot exhaust memory.
type cappedBuffer struct {
	buf       bytes.Buffer
	limit     int
	truncated bool
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	if room := b.limit - b.buf.Len(); room < len(p) {
		b.truncated = true
		if room > 0 {
			b.buf.Write(p[:room])
		}
		// Report full consumption so the child keeps a working pipe and
		// exits on its own terms; the excess is simply dropped.
		return len(p), nil
	}
	return b.buf.Write(p)
}

var _ io.Writer = (*cappedBuffer)(nil)
var _ FallibleSystem = (*External)(nil)
