package pipeline

import (
	"bytes"
	"context"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
)

// External treats an external program as the black-box system: each
// malfunction evaluation pipes the candidate dataset to the program as CSV
// on stdin and parses a single float in [0,1] from its stdout. Any
// execution, timeout, or parse failure scores 1 — the system crashed on the
// data, which is the extreme malfunction of Definition 3 (e.g. the paper's
// "system crash due to invalid input combination" failure class).
type External struct {
	// Command is the program and its arguments.
	Command []string
	// Timeout bounds one evaluation; zero means 30 seconds. A timeout
	// scores 1, modeling the paper's Example 2 (process timeout).
	Timeout time.Duration
}

// Name implements System.
func (s *External) Name() string { return strings.Join(s.Command, " ") }

// MalfunctionScore implements System.
func (s *External) MalfunctionScore(d *dataset.Dataset) float64 {
	if len(s.Command) == 0 {
		return 1
	}
	var input bytes.Buffer
	if err := d.WriteCSV(&input); err != nil {
		return 1
	}
	timeout := s.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, s.Command[0], s.Command[1:]...)
	cmd.Stdin = &input
	out, err := cmd.Output()
	if err != nil {
		return 1
	}
	score, err := strconv.ParseFloat(strings.TrimSpace(string(out)), 64)
	if err != nil || score < 0 {
		return 1
	}
	if score > 1 {
		return 1
	}
	return score
}
