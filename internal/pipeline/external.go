package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
)

// maxExternalOutput caps how much of the program's stdout and stderr is
// read: a well-behaved scorer prints one float, so anything beyond 1 MiB is
// a runaway process whose output must not exhaust memory.
const maxExternalOutput = 1 << 20

// External treats an external program as the black-box system: each
// malfunction evaluation pipes the candidate dataset to the program as CSV
// on stdin and parses a single float in [0,1] from its stdout. Any
// execution, timeout, or parse failure scores 1 — the system crashed on the
// data, which is the extreme malfunction of Definition 3 (e.g. the paper's
// "system crash due to invalid input combination" failure class). The
// specific failure reason (timeout vs. crash vs. unparsable output, with a
// stderr excerpt) is retained for diagnostics via LastFailure and,
// optionally, reported through Logf.
type External struct {
	// Command is the program and its arguments.
	Command []string
	// Timeout bounds one evaluation; zero means 30 seconds. A timeout
	// scores 1, modeling the paper's Example 2 (process timeout).
	Timeout time.Duration
	// Logf, when set, receives a diagnostic line for every failed
	// evaluation (timeout, non-zero exit, unparsable or out-of-range
	// output). Useful for surfacing misconfigured scorer commands that
	// would otherwise silently score 1 forever.
	Logf func(format string, args ...any)

	mu          sync.Mutex
	lastFailure string
}

// Name implements System.
func (s *External) Name() string { return strings.Join(s.Command, " ") }

// MalfunctionScore implements System, evaluating under a background context
// bounded only by Timeout.
func (s *External) MalfunctionScore(d *dataset.Dataset) float64 {
	return s.MalfunctionScoreCtx(context.Background(), d)
}

// MalfunctionScoreCtx evaluates the external program under the caller's
// context: cancelling ctx kills the in-flight process, so deadlined or
// cancelled searches stop promptly instead of waiting out Timeout.
func (s *External) MalfunctionScoreCtx(ctx context.Context, d *dataset.Dataset) float64 {
	if len(s.Command) == 0 {
		return s.fail("no command configured")
	}
	var input bytes.Buffer
	if err := d.WriteCSV(&input); err != nil {
		return s.fail("CSV encoding failed: %v", err)
	}
	timeout := s.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	parent := ctx
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	cmd := exec.CommandContext(ctx, s.Command[0], s.Command[1:]...)
	// Without a wait delay, a killed scorer whose grandchildren still hold
	// the stdout pipe would stall Run() until they exit; give up on the
	// pipes one second after cancellation or process exit.
	cmd.WaitDelay = time.Second
	cmd.Stdin = &input
	var stdout, stderr cappedBuffer
	stdout.limit, stderr.limit = maxExternalOutput, maxExternalOutput
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err != nil {
		switch {
		case parent.Err() != nil:
			// The caller's context expired or was cancelled — not this
			// evaluation's own Timeout.
			return s.fail("cancelled: %v", context.Cause(parent))
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			return s.fail("timeout after %v%s", timeout, stderrExcerpt(&stderr))
		case ctx.Err() != nil:
			return s.fail("cancelled: %v", context.Cause(ctx))
		default:
			return s.fail("process failed: %v%s", err, stderrExcerpt(&stderr))
		}
	}
	if stdout.truncated {
		return s.fail("stdout exceeded %d bytes", maxExternalOutput)
	}
	out := strings.TrimSpace(stdout.buf.String())
	score, err := strconv.ParseFloat(out, 64)
	if err != nil {
		return s.fail("unparsable score %q%s", clip(out, 80), stderrExcerpt(&stderr))
	}
	if score < 0 || score > 1 {
		return s.fail("score %v outside [0,1]", score)
	}
	s.mu.Lock()
	s.lastFailure = ""
	s.mu.Unlock()
	return score
}

// LastFailure reports why the most recent evaluation scored 1 (timeout,
// process failure, or parse failure), or "" if it succeeded.
func (s *External) LastFailure() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastFailure
}

// fail records the failure reason, emits it through Logf when configured,
// and returns the extreme malfunction score.
func (s *External) fail(format string, args ...any) float64 {
	reason := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.lastFailure = reason
	s.mu.Unlock()
	if s.Logf != nil {
		s.Logf("external system %q: %s", s.Name(), reason)
	}
	return 1
}

// stderrExcerpt renders a short stderr tail for diagnostics.
func stderrExcerpt(b *cappedBuffer) string {
	msg := strings.TrimSpace(b.buf.String())
	if msg == "" {
		return ""
	}
	return "; stderr: " + clip(msg, 256)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// cappedBuffer collects writer output up to a byte limit, discarding (but
// flagging) the excess so a runaway child process cannot exhaust memory.
type cappedBuffer struct {
	buf       bytes.Buffer
	limit     int
	truncated bool
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	if room := b.limit - b.buf.Len(); room < len(p) {
		b.truncated = true
		if room > 0 {
			b.buf.Write(p[:room])
		}
		// Report full consumption so the child keeps a working pipe and
		// exits on its own terms; the excess is simply dropped.
		return len(p), nil
	}
	return b.buf.Write(p)
}

var _ io.Writer = (*cappedBuffer)(nil)
