package pipeline

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dataset"
)

// ContextFailure renders a done context as an error that always wraps the
// context's sentinel (context.Canceled or context.DeadlineExceeded), and
// additionally wraps the cancel cause when one was set via
// context.WithCancelCause. A raw context.Cause value is not guaranteed to
// wrap the sentinel, so propagating it alone breaks every
// errors.Is(err, context.Canceled) check downstream — the engine's Fatal
// classification among them. Returns nil while ctx is still live.
func ContextFailure(ctx context.Context) error {
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, err) {
		return fmt.Errorf("%w (cause: %w)", err, cause)
	}
	return err
}

// ContextSystem is the context-aware form of System: a malfunction
// evaluation that observes the caller's context, so searches can be
// cancelled or deadlined mid-flight. Implementations that cannot interrupt
// an in-progress evaluation (pure in-process scorers) may ignore the
// context — the engine layer still checks it between evaluations, so
// cancellation is honored at evaluation granularity.
type ContextSystem interface {
	// Name identifies the system in reports.
	Name() string
	// MalfunctionScore quantifies how much the system malfunctions on d,
	// observing ctx for cancellation where possible.
	MalfunctionScore(ctx context.Context, d *dataset.Dataset) float64
}

// CtxFunc adapts a plain context-aware function into a ContextSystem.
type CtxFunc struct {
	SystemName string
	Score      func(ctx context.Context, d *dataset.Dataset) float64
}

// Name implements ContextSystem.
func (f *CtxFunc) Name() string { return f.SystemName }

// MalfunctionScore implements ContextSystem.
func (f *CtxFunc) MalfunctionScore(ctx context.Context, d *dataset.Dataset) float64 {
	return f.Score(ctx, d)
}

// ctxScorer is the optional capability a legacy System can implement to
// receive the caller's context without changing its System signature
// (External does this: the ctx reaches exec.CommandContext).
type ctxScorer interface {
	MalfunctionScoreCtx(ctx context.Context, d *dataset.Dataset) float64
}

// AsContext adapts a legacy System to a ContextSystem. Systems that expose
// the MalfunctionScoreCtx capability get the real context threaded through;
// all others are wrapped with the context ignored (the caller still gets
// between-evaluation cancellation from the engine layer). A system that
// additionally implements FallibleSystem (External does) keeps its
// error-aware classification visible through the adapter, so AsFallible on
// the result recovers the precise failure taxonomy instead of the
// conservative generic wrapper.
func AsContext(sys System) ContextSystem {
	a := ctxAdapter{name: sys.Name}
	if cs, ok := sys.(ctxScorer); ok {
		a.score = cs.MalfunctionScoreCtx
	} else {
		a.score = func(_ context.Context, d *dataset.Dataset) float64 { return sys.MalfunctionScore(d) }
	}
	if f, ok := sys.(FallibleSystem); ok {
		return &fallibleCtxAdapter{ctxAdapter: a, try: f.TryMalfunctionScore}
	}
	return &a
}

type ctxAdapter struct {
	name  func() string
	score func(ctx context.Context, d *dataset.Dataset) float64
}

func (a *ctxAdapter) Name() string { return a.name() }

func (a *ctxAdapter) MalfunctionScore(ctx context.Context, d *dataset.Dataset) float64 {
	return a.score(ctx, d)
}

// fallibleCtxAdapter is a ctxAdapter whose underlying system is error-aware;
// it satisfies both ContextSystem and FallibleSystem.
type fallibleCtxAdapter struct {
	ctxAdapter
	try func(ctx context.Context, d *dataset.Dataset) ScoreResult
}

func (a *fallibleCtxAdapter) TryMalfunctionScore(ctx context.Context, d *dataset.Dataset) ScoreResult {
	return a.try(ctx, d)
}
