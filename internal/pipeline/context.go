package pipeline

import (
	"context"

	"repro/internal/dataset"
)

// ContextSystem is the context-aware form of System: a malfunction
// evaluation that observes the caller's context, so searches can be
// cancelled or deadlined mid-flight. Implementations that cannot interrupt
// an in-progress evaluation (pure in-process scorers) may ignore the
// context — the engine layer still checks it between evaluations, so
// cancellation is honored at evaluation granularity.
type ContextSystem interface {
	// Name identifies the system in reports.
	Name() string
	// MalfunctionScore quantifies how much the system malfunctions on d,
	// observing ctx for cancellation where possible.
	MalfunctionScore(ctx context.Context, d *dataset.Dataset) float64
}

// CtxFunc adapts a plain context-aware function into a ContextSystem.
type CtxFunc struct {
	SystemName string
	Score      func(ctx context.Context, d *dataset.Dataset) float64
}

// Name implements ContextSystem.
func (f *CtxFunc) Name() string { return f.SystemName }

// MalfunctionScore implements ContextSystem.
func (f *CtxFunc) MalfunctionScore(ctx context.Context, d *dataset.Dataset) float64 {
	return f.Score(ctx, d)
}

// ctxScorer is the optional capability a legacy System can implement to
// receive the caller's context without changing its System signature
// (External does this: the ctx reaches exec.CommandContext).
type ctxScorer interface {
	MalfunctionScoreCtx(ctx context.Context, d *dataset.Dataset) float64
}

// AsContext adapts a legacy System to a ContextSystem. Systems that expose
// the MalfunctionScoreCtx capability get the real context threaded through;
// all others are wrapped with the context ignored (the caller still gets
// between-evaluation cancellation from the engine layer).
func AsContext(sys System) ContextSystem {
	if cs, ok := sys.(ctxScorer); ok {
		return &ctxAdapter{name: sys.Name, score: cs.MalfunctionScoreCtx}
	}
	return &ctxAdapter{
		name:  sys.Name,
		score: func(_ context.Context, d *dataset.Dataset) float64 { return sys.MalfunctionScore(d) },
	}
}

type ctxAdapter struct {
	name  func() string
	score func(ctx context.Context, d *dataset.Dataset) float64
}

func (a *ctxAdapter) Name() string { return a.name() }

func (a *ctxAdapter) MalfunctionScore(ctx context.Context, d *dataset.Dataset) float64 {
	return a.score(ctx, d)
}
