package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func clockOf(c *fakeClock) func() time.Time      { return c.now }
func mustOpen(t *testing.T, b *Breaker, want bool) {
	t.Helper()
	if b.Open() != want {
		t.Fatalf("Open() = %v, want %v", b.Open(), want)
	}
}

func TestBreakerTripsAfterConsecutiveTransients(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{transientRes()}}
	b := &Breaker{System: sys, FailureThreshold: 3, Cooldown: time.Minute, Clock: clockOf(clk)}

	for i := 0; i < 3; i++ {
		res := b.TryMalfunctionScore(context.Background(), extData())
		if res.Err == nil || errors.Is(res.Err, ErrBreakerOpen) {
			t.Fatalf("call %d: err = %v, want the inner transient failure", i, res.Err)
		}
	}
	mustOpen(t, b, true)
	if b.BreakerTrips() != 1 {
		t.Fatalf("trips = %d, want 1", b.BreakerTrips())
	}

	// While open: fail fast, no oracle call, Attempts 0.
	res := b.TryMalfunctionScore(context.Background(), extData())
	if !errors.Is(res.Err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", res.Err)
	}
	if res.Attempts != 0 {
		t.Fatalf("attempts = %d, want 0 (no oracle call while open)", res.Attempts)
	}
	if sys.Calls() != 3 {
		t.Fatalf("oracle calls = %d, want 3 (fail-fast must not consult the scorer)", sys.Calls())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{
		transientRes(), transientRes(), // trip
		transientRes(),  // failed probe: re-open
		successRes(0.3), // successful probe: close
		successRes(0.3),
	}}
	b := &Breaker{System: sys, FailureThreshold: 2, Cooldown: time.Minute, Clock: clockOf(clk)}
	ctx := context.Background()
	d := extData()

	b.TryMalfunctionScore(ctx, d)
	b.TryMalfunctionScore(ctx, d)
	mustOpen(t, b, true)

	// Cooldown elapses: the next call probes the scorer, which fails again →
	// the circuit re-opens for another full cooldown.
	clk.advance(61 * time.Second)
	mustOpen(t, b, false)
	if res := b.TryMalfunctionScore(ctx, d); errors.Is(res.Err, ErrBreakerOpen) || res.Err == nil {
		t.Fatalf("probe result = %+v, want the inner transient failure", res)
	}
	mustOpen(t, b, true)
	if b.BreakerTrips() != 2 {
		t.Fatalf("trips = %d, want 2 after failed probe", b.BreakerTrips())
	}

	// Second probe succeeds: the circuit closes and stays closed.
	clk.advance(61 * time.Second)
	if res := b.TryMalfunctionScore(ctx, d); res.Err != nil || res.Score != 0.3 {
		t.Fatalf("successful probe = %+v", res)
	}
	mustOpen(t, b, false)
	if res := b.TryMalfunctionScore(ctx, d); res.Err != nil {
		t.Fatalf("post-close call = %+v", res)
	}
	if sys.Calls() != 5 {
		t.Fatalf("oracle calls = %d, want 5", sys.Calls())
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{transientRes()}}
	b := &Breaker{System: sys, FailureThreshold: 2, Cooldown: time.Minute, Clock: clockOf(clk)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Transient failures under the caller's own cancelled context say nothing
	// about the scorer's health: the circuit must stay closed.
	for i := 0; i < 5; i++ {
		b.TryMalfunctionScore(ctx, extData())
	}
	mustOpen(t, b, false)
	if b.BreakerTrips() != 0 {
		t.Fatalf("trips = %d, want 0", b.BreakerTrips())
	}
}

func TestBreakerResetsOnSuccessAndDeterministic(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{
		transientRes(),
		{Score: 1, Deterministic: true, Attempts: 1}, // scorer reachable: resets
		transientRes(),
		successRes(0.2), // resets again
		transientRes(),
	}}
	b := &Breaker{System: sys, FailureThreshold: 2, Cooldown: time.Minute, Clock: clockOf(clk)}
	ctx := context.Background()
	d := extData()
	for i := 0; i < 5; i++ {
		b.TryMalfunctionScore(ctx, d)
	}
	// No two *consecutive* transients ever happened: still closed.
	mustOpen(t, b, false)
	if b.BreakerTrips() != 0 {
		t.Fatalf("trips = %d, want 0", b.BreakerTrips())
	}
}
