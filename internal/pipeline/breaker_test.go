package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
)

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func clockOf(c *fakeClock) func() time.Time      { return c.now }
func mustOpen(t *testing.T, b *Breaker, want bool) {
	t.Helper()
	if b.Open() != want {
		t.Fatalf("Open() = %v, want %v", b.Open(), want)
	}
}

func TestBreakerTripsAfterConsecutiveTransients(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{transientRes()}}
	b := &Breaker{System: sys, FailureThreshold: 3, Cooldown: time.Minute, Clock: clockOf(clk)}

	for i := 0; i < 3; i++ {
		res := b.TryMalfunctionScore(context.Background(), extData())
		if res.Err == nil || errors.Is(res.Err, ErrBreakerOpen) {
			t.Fatalf("call %d: err = %v, want the inner transient failure", i, res.Err)
		}
	}
	mustOpen(t, b, true)
	if b.BreakerTrips() != 1 {
		t.Fatalf("trips = %d, want 1", b.BreakerTrips())
	}

	// While open: fail fast, no oracle call, Attempts 0.
	res := b.TryMalfunctionScore(context.Background(), extData())
	if !errors.Is(res.Err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", res.Err)
	}
	if res.Attempts != 0 {
		t.Fatalf("attempts = %d, want 0 (no oracle call while open)", res.Attempts)
	}
	if sys.Calls() != 3 {
		t.Fatalf("oracle calls = %d, want 3 (fail-fast must not consult the scorer)", sys.Calls())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{
		transientRes(), transientRes(), // trip
		transientRes(),  // failed probe: re-open
		successRes(0.3), // successful probe: close
		successRes(0.3),
	}}
	b := &Breaker{System: sys, FailureThreshold: 2, Cooldown: time.Minute, Clock: clockOf(clk)}
	ctx := context.Background()
	d := extData()

	b.TryMalfunctionScore(ctx, d)
	b.TryMalfunctionScore(ctx, d)
	mustOpen(t, b, true)

	// Cooldown elapses: the next call probes the scorer, which fails again →
	// the circuit re-opens for another full cooldown.
	clk.advance(61 * time.Second)
	mustOpen(t, b, false)
	if res := b.TryMalfunctionScore(ctx, d); errors.Is(res.Err, ErrBreakerOpen) || res.Err == nil {
		t.Fatalf("probe result = %+v, want the inner transient failure", res)
	}
	mustOpen(t, b, true)
	if b.BreakerTrips() != 2 {
		t.Fatalf("trips = %d, want 2 after failed probe", b.BreakerTrips())
	}

	// Second probe succeeds: the circuit closes and stays closed.
	clk.advance(61 * time.Second)
	if res := b.TryMalfunctionScore(ctx, d); res.Err != nil || res.Score != 0.3 {
		t.Fatalf("successful probe = %+v", res)
	}
	mustOpen(t, b, false)
	if res := b.TryMalfunctionScore(ctx, d); res.Err != nil {
		t.Fatalf("post-close call = %+v", res)
	}
	if sys.Calls() != 5 {
		t.Fatalf("oracle calls = %d, want 5", sys.Calls())
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{transientRes()}}
	b := &Breaker{System: sys, FailureThreshold: 2, Cooldown: time.Minute, Clock: clockOf(clk)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Transient failures under the caller's own cancelled context say nothing
	// about the scorer's health: the circuit must stay closed.
	for i := 0; i < 5; i++ {
		b.TryMalfunctionScore(ctx, extData())
	}
	mustOpen(t, b, false)
	if b.BreakerTrips() != 0 {
		t.Fatalf("trips = %d, want 0", b.BreakerTrips())
	}
}

func TestBreakerResetsOnSuccessAndDeterministic(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{
		transientRes(),
		{Score: 1, Deterministic: true, Attempts: 1}, // scorer reachable: resets
		transientRes(),
		successRes(0.2), // resets again
		transientRes(),
	}}
	b := &Breaker{System: sys, FailureThreshold: 2, Cooldown: time.Minute, Clock: clockOf(clk)}
	ctx := context.Background()
	d := extData()
	for i := 0; i < 5; i++ {
		b.TryMalfunctionScore(ctx, d)
	}
	// No two *consecutive* transients ever happened: still closed.
	mustOpen(t, b, false)
	if b.BreakerTrips() != 0 {
		t.Fatalf("trips = %d, want 0", b.BreakerTrips())
	}
}

// TestBreakerSingleHalfOpenProbe is the regression test for the half-open
// race: once the cooldown elapses, exactly one caller may probe the scorer.
// While that probe is blocked in flight, every concurrent evaluation must
// fail fast with ErrBreakerOpen instead of also reaching the scorer.
func TestBreakerSingleHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	sys := &TryFunc{SystemName: "slow", Try: func(context.Context, *dataset.Dataset) ScoreResult {
		switch calls.Add(1) {
		case 1:
			return transientRes() // trips the threshold-1 breaker
		case 2:
			// First post-cooldown call: the probe. Block it mid-flight.
			close(entered)
			<-release
		}
		return successRes(0.3)
	}}
	b := &Breaker{System: sys, FailureThreshold: 1, Cooldown: time.Minute, Clock: clockOf(clk)}

	ctx := context.Background()
	d := extData()
	b.TryMalfunctionScore(ctx, d) // transient → trips (threshold 1)
	mustOpen(t, b, true)
	clk.advance(61 * time.Second)

	probeDone := make(chan ScoreResult, 1)
	go func() { probeDone <- b.TryMalfunctionScore(ctx, d) }()
	<-entered // the probe is inside the scorer, blocked

	// Concurrent callers while the probe is in flight: all fail fast.
	const concurrent = 8
	var wg sync.WaitGroup
	rejected := make([]ScoreResult, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rejected[i] = b.TryMalfunctionScore(ctx, d)
		}(i)
	}
	wg.Wait()
	for i, res := range rejected {
		if !errors.Is(res.Err, ErrBreakerOpen) {
			t.Fatalf("caller %d: err = %v, want ErrBreakerOpen while probe in flight", i, res.Err)
		}
		if res.Attempts != 0 {
			t.Fatalf("caller %d: attempts = %d, want 0", i, res.Attempts)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("scorer calls = %d, want 2 (trip + single probe) — %d extra probes raced through",
			got, got-2)
	}

	// Release the probe: success closes the circuit for everyone.
	close(release)
	if res := <-probeDone; res.Err != nil || res.Score != 0.3 {
		t.Fatalf("probe result = %+v", res)
	}
	mustOpen(t, b, false)
	if res := b.TryMalfunctionScore(ctx, d); res.Err != nil || res.Score != 0.3 {
		t.Fatalf("post-close call = %+v", res)
	}
}

// TestBreakerCancelledProbeReleasesSlot: a probe cut short by its caller's
// cancelled context must settle nothing — the circuit stays half-open and
// the next caller gets to probe.
func TestBreakerCancelledProbeReleasesSlot(t *testing.T) {
	clk := newFakeClock()
	sys := &scriptSys{script: []ScoreResult{
		transientRes(),                               // trip
		{Score: 0, Err: context.Canceled, Attempts: 1}, // probe under cancelled ctx
		successRes(0.4),                              // second probe succeeds
	}}
	b := &Breaker{System: sys, FailureThreshold: 1, Cooldown: time.Minute, Clock: clockOf(clk)}
	d := extData()

	b.TryMalfunctionScore(context.Background(), d)
	mustOpen(t, b, true)
	clk.advance(61 * time.Second)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if res := b.TryMalfunctionScore(cancelled, d); !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled probe = %+v", res)
	}
	// Slot released, circuit still half-open: the next caller probes and
	// closes the circuit.
	if res := b.TryMalfunctionScore(context.Background(), d); res.Err != nil || res.Score != 0.4 {
		t.Fatalf("follow-up probe = %+v", res)
	}
	mustOpen(t, b, false)
	if b.BreakerTrips() != 1 {
		t.Fatalf("trips = %d, want 1 (cancelled probe must not re-open)", b.BreakerTrips())
	}
}
