package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/dataset"
)

// Retry wraps a FallibleSystem and re-attempts transient failures with
// exponential backoff. Deterministic failures (the scorer crashed on the
// input), permanent errors, and ErrBreakerOpen pass through immediately —
// retrying them wastes the very oracle budget the engine is protecting.
//
// Backoff for attempt k (1-based) is BaseDelay·2^(k-1) capped at MaxDelay.
// When Jitter > 0 and a Source is injected, each delay is shortened by up to
// Jitter·delay using the seeded source, so backoff is reproducible per seed
// instead of depending on the global RNG. Sleeps observe the context: a
// cancelled caller aborts the backoff immediately with a transient failure.
type Retry struct {
	// System is the wrapped error-aware scorer.
	System FallibleSystem
	// Max bounds total attempts per evaluation (first try included);
	// values below 1 mean the default of 3.
	Max int
	// BaseDelay is the first backoff; zero means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; zero means 5s.
	MaxDelay time.Duration
	// Jitter in [0,1] is the fraction of each delay randomized away;
	// zero disables jitter.
	Jitter float64
	// Source seeds the jitter; nil with Jitter > 0 falls back to a fixed
	// seed so behavior stays reproducible.
	Source rand.Source

	mu  sync.Mutex
	rng *rand.Rand
}

// Name implements FallibleSystem.
func (r *Retry) Name() string { return r.System.Name() }

func (r *Retry) max() int {
	if r.Max < 1 {
		return 3
	}
	return r.Max
}

func (r *Retry) baseDelay() time.Duration {
	if r.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return r.BaseDelay
}

func (r *Retry) maxDelay() time.Duration {
	if r.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return r.MaxDelay
}

// delay computes the backoff before attempt k+1, k completed attempts in.
func (r *Retry) delay(k int) time.Duration {
	d := r.baseDelay()
	for i := 1; i < k && d < r.maxDelay(); i++ {
		d *= 2
	}
	if d > r.maxDelay() {
		d = r.maxDelay()
	}
	if r.Jitter > 0 {
		r.mu.Lock()
		if r.rng == nil {
			src := r.Source
			if src == nil {
				src = rand.NewSource(1)
			}
			r.rng = rand.New(src)
		}
		f := r.rng.Float64()
		r.mu.Unlock()
		d -= time.Duration(float64(d) * r.Jitter * f)
	}
	return d
}

// TryMalfunctionScore implements FallibleSystem: transient failures are
// retried up to Max total attempts; the returned Attempts accumulates every
// oracle invocation so the engine can report retries.
func (r *Retry) TryMalfunctionScore(ctx context.Context, d *dataset.Dataset) ScoreResult {
	attempts := 0
	for k := 1; ; k++ {
		res := r.System.TryMalfunctionScore(ctx, d)
		attempts += res.Attempts
		res.Attempts = attempts
		if res.Err == nil || !res.Transient || errors.Is(res.Err, ErrBreakerOpen) {
			return res
		}
		if k >= r.max() || ctx.Err() != nil {
			return res
		}
		timer := time.NewTimer(r.delay(k))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			// %w keeps the context sentinel in the chain: a retry abandoned
			// by cancellation must satisfy errors.Is(err, context.Canceled)
			// so the engine treats it as a fatal stop, not a skippable slot.
			res := transientResult(attempts, "retry abandoned: %w", ContextFailure(ctx))
			return res
		}
	}
}

// BreakerTrips forwards the inner chain's trip count, keeping the optional
// TripCounter capability visible when a Breaker sits below the Retry.
func (r *Retry) BreakerTrips() int {
	if tc, ok := r.System.(TripCounter); ok {
		return tc.BreakerTrips()
	}
	return 0
}
