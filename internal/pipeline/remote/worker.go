package remote

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
)

// Worker serves score requests for one oracle over a listener: the server
// half of the remote transport. It wraps any FallibleSystem — the scorer's
// own failure classification travels back to the client intact.
type Worker struct {
	// System is the wrapped error-aware scorer (required).
	System pipeline.FallibleSystem
	// Logf, when set, receives one line per served connection and per
	// protocol error (e.g. log.Printf). Nil silences the worker.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Serve accepts connections until ctx is cancelled or the listener fails,
// handling each connection on its own goroutine. It closes the listener on
// cancellation and waits for in-flight connections before returning
// ctx.Err().
func (w *Worker) Serve(ctx context.Context, ln net.Listener) error {
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.serveConn(ctx, conn)
		}()
	}
}

// serveConn answers score requests on one connection until the peer hangs
// up, a frame is malformed, or ctx is cancelled (which unblocks any
// in-flight read by expiring the connection's deadline).
func (w *Worker) serveConn(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return // peer closed, deadline expired, or garbage framing
		}
		fp, opts, csv, err := decodeRequest(payload)
		if err != nil {
			w.logf("remote worker: %s: %v", conn.RemoteAddr(), err)
			return
		}
		res := w.score(ctx, opts, csv)
		if err := writeFrame(conn, encodeResponse(res)); err != nil {
			w.logf("remote worker: %s: reply for %016x: %v", conn.RemoteAddr(), fp, err)
			return
		}
	}
}

// score decodes the dataset with the sender's schema and evaluates it. A
// payload that does not parse is a permanent failure — retrying the same
// bytes cannot help. A scorer panic is likewise answered as a permanent
// failure instead of killing the worker process: one poisoned dataset must
// not take the whole fleet member down.
func (w *Worker) score(ctx context.Context, opts dataset.InferOptions, csv []byte) (res pipeline.ScoreResult) {
	defer func() {
		if r := recover(); r != nil {
			w.logf("remote worker: scorer panic: %v", r)
			res = pipeline.ScoreResult{Score: math.NaN(), Err: fmt.Errorf("remote worker: scorer panic: %v", r)}
		}
	}()
	d, err := dataset.ReadCSV(bytes.NewReader(csv), opts)
	if err != nil {
		return pipeline.ScoreResult{Score: math.NaN(), Err: err}
	}
	return w.System.TryMalfunctionScore(ctx, d)
}
