package remote

import (
	"context"
	"fmt"
	"net"
	"sync"

	"repro/internal/pipeline"
)

// netFaultMode enumerates the injectable network failures.
type netFaultMode int

const (
	// faultDrop delivers the request nowhere: the write "succeeds" but the
	// connection is dead and the response read fails.
	faultDrop netFaultMode = iota
	// faultTimeout makes the request exceed its deadline immediately.
	faultTimeout
	// faultPartialWrite transmits half the frame, then fails — the worker
	// sees a truncated frame and drops the connection.
	faultPartialWrite
	// faultCrash simulates the worker process dying mid-connection: the
	// write fails as a reset and the connection is gone.
	faultCrash
	numFaultModes
)

func (m netFaultMode) String() string {
	switch m {
	case faultDrop:
		return "drop"
	case faultTimeout:
		return "timeout"
	case faultPartialWrite:
		return "partial-write"
	case faultCrash:
		return "worker-crash"
	}
	return "unknown"
}

// NetFaultInjector is the network-level sibling of pipeline.FaultInjector:
// a DialFunc middleware that deterministically injects connection faults
// keyed on the dataset fingerprint each request carries. For every
// distinct fingerprint, the first FailFirst score requests fail — cycling
// through drops, timeouts, partial writes, and worker crashes, the mode a
// pure function of (fingerprint, attempt index) — and later requests pass
// untouched. Because injection keys on dataset identity rather than wall
// clock or arrival order, a chaos run is reproducible regardless of worker
// count, hedging, or scheduling.
type NetFaultInjector struct {
	// Dial is the underlying dialer (nil means net.Dialer.DialContext).
	Dial DialFunc
	// FailFirst is how many requests fail per distinct fingerprint.
	FailFirst int

	mu       sync.Mutex
	seen     map[uint64]int
	injected int
}

// DialContext is the DialFunc to hand a fleet's Config.Dial.
func (n *NetFaultInjector) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	dial := n.Dial
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	conn, err := dial(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return &faultConn{Conn: conn, inj: n}, nil
}

// Injected reports how many faults have been injected — chaos tests assert
// it is non-zero, proving the run exercised the fault paths.
func (n *NetFaultInjector) Injected() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.injected
}

// decide consumes one request slot for fp and returns the fault to inject,
// if any.
func (n *NetFaultInjector) decide(fp uint64) (netFaultMode, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.seen == nil {
		n.seen = make(map[uint64]int)
	}
	k := n.seen[fp]
	n.seen[fp] = k + 1
	if k >= n.FailFirst {
		return 0, false
	}
	n.injected++
	return netFaultMode((fp + uint64(k)) % uint64(numFaultModes)), true
}

// faultConn intercepts whole request frames (the client writes each frame
// with a single Write) and applies the injector's verdict.
type faultConn struct {
	net.Conn
	inj     *NetFaultInjector
	dropped bool
}

func (c *faultConn) Write(p []byte) (int, error) {
	fp, ok := parseRequestFingerprint(p)
	if !ok {
		return c.Conn.Write(p)
	}
	mode, inject := c.inj.decide(fp)
	if !inject {
		return c.Conn.Write(p)
	}
	switch mode {
	case faultTimeout:
		c.Conn.Close()
		return 0, &injectedNetError{mode: mode, timeout: true}
	case faultPartialWrite:
		half := len(p) / 2
		_, _ = c.Conn.Write(p[:half]) // the connection is being destroyed either way
		c.Conn.Close()
		return half, &injectedNetError{mode: mode}
	case faultCrash:
		c.Conn.Close()
		return 0, &injectedNetError{mode: mode}
	default: // faultDrop: the bytes vanish; the response read will fail
		c.Conn.Close()
		c.dropped = true
		return len(p), nil
	}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.dropped {
		return 0, &injectedNetError{mode: faultDrop}
	}
	return c.Conn.Read(p)
}

// injectedNetError is the net.Error the fault modes surface; Timeout()
// makes the timeout mode indistinguishable from a real deadline expiry.
type injectedNetError struct {
	mode    netFaultMode
	timeout bool
}

var _ net.Error = (*injectedNetError)(nil)

func (e *injectedNetError) Error() string {
	return fmt.Sprintf("injected network fault: %s", e.mode)
}

func (e *injectedNetError) Timeout() bool   { return e.timeout }
func (e *injectedNetError) Temporary() bool { return true }

// Is lets chaos assertions match injected faults with errors.Is.
func (e *injectedNetError) Is(target error) bool { return target == pipeline.ErrInjected }
