package remote_test

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/pipeline/remote"
	"repro/internal/synth"
)

// startFleetWorkers serves the scenario's scorer on n loopback workers and
// returns their addresses.
func startFleetWorkers(t testing.TB, sys pipeline.System, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			w := &remote.Worker{System: pipeline.AsFallible(pipeline.AsContext(sys))}
			w.Serve(ctx, ln)
		}()
		t.Cleanup(func() {
			cancel()
			<-done
		})
	}
	return addrs
}

// TestRemoteChaosMatchesInProcessFaultFree is the distributed acceptance
// bar: a search evaluated over a real TCP worker fleet — under
// deterministic network-fault injection (drops, timeouts, partial writes,
// worker crashes; K ≤ 2 faults per distinct dataset) — must return
// byte-identical explanations, scores, intervention counts, and traces to
// the plain in-process fault-free run, for fleets of 1 and 8 workers
// alike.
func TestRemoteChaosMatchesInProcessFaultFree(t *testing.T) {
	type runner func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error)
	algos := map[string]runner{
		"GRD": func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error) {
			return e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		},
		"GT": func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error) {
			return e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		},
	}
	seed := int64(1)
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})
	for name, run := range algos {
		clean := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed, Workers: 1}
		want, wantErr := run(clean, sc)
		if wantErr != nil {
			t.Fatalf("%s: fault-free run failed: %v", name, wantErr)
		}
		for _, fleetN := range []int{1, 8} {
			for _, failFirst := range []int{1, 2} {
				inj := &remote.NetFaultInjector{FailFirst: failFirst}
				fleet := remote.NewFleet(remote.Config{
					Addrs:          startFleetWorkers(t, sc.System, fleetN),
					SystemName:     sc.System.Name(),
					Dial:           inj.DialContext,
					RetryMax:       failFirst + 1,
					RetryBaseDelay: 50 * time.Microsecond,
					RetryMaxDelay:  time.Millisecond,
				})
				e := &core.Explainer{FallibleSystem: fleet, Tau: 0.05, Seed: seed, Workers: fleetN}
				got, err := run(e, sc)
				fleet.Close()
				if err != nil {
					t.Fatalf("%s fleet=%d K=%d: %v", name, fleetN, failFirst, err)
				}
				if got.ExplanationString() != want.ExplanationString() {
					t.Errorf("%s fleet=%d K=%d: explanation %s, fault-free %s",
						name, fleetN, failFirst, got.ExplanationString(), want.ExplanationString())
				}
				if got.InitialScore != want.InitialScore || got.FinalScore != want.FinalScore {
					t.Errorf("%s fleet=%d K=%d: scores (%v,%v) vs (%v,%v)",
						name, fleetN, failFirst, got.InitialScore, got.FinalScore, want.InitialScore, want.FinalScore)
				}
				if got.Interventions != want.Interventions {
					t.Errorf("%s fleet=%d K=%d: interventions %d, fault-free %d — injected faults must not count",
						name, fleetN, failFirst, got.Interventions, want.Interventions)
				}
				if len(got.Trace) != len(want.Trace) {
					t.Errorf("%s fleet=%d K=%d: trace length %d vs %d",
						name, fleetN, failFirst, len(got.Trace), len(want.Trace))
				}
				for i := range got.Trace {
					if got.Trace[i].Score != want.Trace[i].Score || got.Trace[i].Accepted != want.Trace[i].Accepted {
						t.Errorf("%s fleet=%d K=%d: trace[%d] = %+v, fault-free %+v",
							name, fleetN, failFirst, i, got.Trace[i], want.Trace[i])
						break
					}
				}
				if got.Stats.TransientFailures != 0 {
					t.Errorf("%s fleet=%d K=%d: %d transient failures leaked past the worker retries",
						name, fleetN, failFirst, got.Stats.TransientFailures)
				}
				if inj.Injected() == 0 {
					t.Errorf("%s fleet=%d K=%d: injector idle — chaos exercised nothing",
						name, fleetN, failFirst)
				}
				if got.Stats.Fleet.Dispatched == 0 {
					t.Errorf("%s fleet=%d K=%d: fleet stats absent from the result: %+v",
						name, fleetN, failFirst, got.Stats.Fleet)
				}
			}
		}
	}
}

// TestRemoteChaosWithHedgingStaysDeterministic: hedged dispatch launches
// speculative duplicates whose arrival order is scheduler-dependent — but
// since every worker computes the same pure score, the search outcome must
// not move.
func TestRemoteChaosWithHedgingStaysDeterministic(t *testing.T) {
	seed := int64(2)
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})
	clean := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed, Workers: 1}
	want, err := clean.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	inj := &remote.NetFaultInjector{FailFirst: 2}
	fleet := remote.NewFleet(remote.Config{
		Addrs:          startFleetWorkers(t, sc.System, 4),
		SystemName:     sc.System.Name(),
		Dial:           inj.DialContext,
		RetryMax:       3,
		RetryBaseDelay: 50 * time.Microsecond,
		HedgeAfter:     time.Millisecond,
	})
	defer fleet.Close()
	e := &core.Explainer{FallibleSystem: fleet, Tau: 0.05, Seed: seed, Workers: 4}
	got, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExplanationString() != want.ExplanationString() ||
		got.FinalScore != want.FinalScore || got.Interventions != want.Interventions {
		t.Fatalf("hedged chaos diverged: %s/%v/%d vs %s/%v/%d",
			got.ExplanationString(), got.FinalScore, got.Interventions,
			want.ExplanationString(), want.FinalScore, want.Interventions)
	}
}

// TestRemoteFleetStatsReachEngine: the FleetReporter capability must
// surface fleet counters through engine.Stats even when the fleet sits
// under an extra Retry/Breaker wrapper.
func TestRemoteFleetStatsReachEngine(t *testing.T) {
	seed := int64(0)
	sc := synth.New(synth.Options{NumPVTs: 8, NumAttrs: 4, Conjunction: 1, CauseTopBenefit: true, Seed: seed})
	fleet := remote.NewFleet(remote.Config{
		Addrs:      startFleetWorkers(t, sc.System, 2),
		SystemName: sc.System.Name(),
	})
	defer fleet.Close()
	wrapped := &pipeline.Retry{System: fleet, Max: 2, BaseDelay: time.Millisecond}
	e := &core.Explainer{FallibleSystem: wrapped, Tau: 0.05, Seed: seed, Workers: 2}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fleet.Workers != 2 || res.Stats.Fleet.Dispatched == 0 {
		t.Fatalf("fleet stats did not reach the engine through the wrapper: %+v", res.Stats.Fleet)
	}
	if res.Stats.Fleet.Healthy != 2 {
		t.Fatalf("healthy = %d, want 2 (no faults in this run)", res.Stats.Fleet.Healthy)
	}
}
