package remote

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
)

// flagData builds a one-column dataset whose single value identifies it.
func flagData(v float64) *dataset.Dataset {
	d := dataset.New()
	d.MustAddNumeric("x", []float64{v})
	return d
}

// valueScorer scores a dataset by its first "x" value, counting calls.
type valueScorer struct {
	calls atomic.Int64
}

func (s *valueScorer) Name() string { return "value" }

func (s *valueScorer) TryMalfunctionScore(_ context.Context, d *dataset.Dataset) pipeline.ScoreResult {
	s.calls.Add(1)
	return pipeline.ScoreResult{Score: d.Num("x", 0), Attempts: 1}
}

// startWorker serves sys on a loopback listener for the test's duration.
func startWorker(t *testing.T, sys pipeline.FallibleSystem) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := &Worker{System: sys}
		w.Serve(ctx, ln) //nolint — shutdown error is the test teardown
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

// deadAddr returns an endpoint that refuses connections.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestProtocolRoundTrip(t *testing.T) {
	cases := []pipeline.ScoreResult{
		{Score: 0.375, Attempts: 1},
		{Score: 1, Deterministic: true, Attempts: 2},
		{Score: math.NaN(), Err: errors.New("exploded"), Transient: true, Attempts: 3},
		{Score: math.NaN(), Err: errors.New("bad config"), Attempts: 1},
	}
	for i, want := range cases {
		got, err := decodeResponse(encodeResponse(want))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if want.Err == nil {
			if got.Err != nil || got.Score != want.Score || got.Deterministic != want.Deterministic {
				t.Fatalf("case %d: got %+v, want %+v", i, got, want)
			}
		} else {
			if got.Err == nil || !math.IsNaN(got.Score) || got.Transient != want.Transient {
				t.Fatalf("case %d: got %+v, want failure like %+v", i, got, want)
			}
			if want.Transient && !errors.Is(got.Err, pipeline.ErrTransient) {
				t.Fatalf("case %d: transient classification lost: %v", i, got.Err)
			}
		}
		if got.Attempts != want.Attempts {
			t.Fatalf("case %d: attempts %d, want %d", i, got.Attempts, want.Attempts)
		}
	}

	d := flagData(0.5)
	payload, err := encodeRequest(d)
	if err != nil {
		t.Fatal(err)
	}
	var framed bytes.Buffer
	if err := writeFrame(&framed, payload); err != nil {
		t.Fatal(err)
	}
	fp, ok := parseRequestFingerprint(framed.Bytes())
	if !ok || fp != d.Fingerprint() {
		t.Fatalf("parseRequestFingerprint = %x, %v, want %x", fp, ok, d.Fingerprint())
	}
	fp2, opts, csv, err := decodeRequest(payload)
	if err != nil || fp2 != d.Fingerprint() {
		t.Fatalf("decodeRequest = %x, %v, want %x", fp2, err, d.Fingerprint())
	}
	if opts.Kinds["flag"] != dataset.Numeric {
		t.Fatalf("schema lost in transit: %v", opts.Kinds)
	}
	back, err := dataset.ReadCSV(bytes.NewReader(csv), opts)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != d.Fingerprint() {
		t.Fatalf("round-tripped fingerprint %x, want %x", back.Fingerprint(), d.Fingerprint())
	}
}

// TestProtocolSchemaPinsStringKinds is the regression test for the sentiment
// scenario's panic: a string column whose every value parses as a float must
// come back Categorical/Text on the worker side, not silently re-typed
// Numeric by CSV inference.
func TestProtocolSchemaPinsStringKinds(t *testing.T) {
	d := dataset.New()
	if err := d.AddCategoricalColumn("target", []string{"-1", "1", "-1"}, nil); err != nil {
		t.Fatal(err)
	}
	payload, err := encodeRequest(d)
	if err != nil {
		t.Fatal(err)
	}
	_, opts, csv, err := decodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	back, err := dataset.ReadCSV(bytes.NewReader(csv), opts)
	if err != nil {
		t.Fatal(err)
	}
	col := back.Column("target")
	if col == nil || col.Kind == dataset.Numeric {
		t.Fatalf("string column re-typed in transit: %+v", col)
	}
	if got := col.StrAt(1); got != "1" {
		t.Fatalf("StrAt(1) = %q, want \"1\"", got)
	}
}

func TestWorkerScoresOverTCP(t *testing.T) {
	scorer := &valueScorer{}
	addr := startWorker(t, scorer)
	tr := newTransport(addr, nil, 0)
	defer tr.Close()
	ctx := context.Background()

	for _, v := range []float64{0.25, 0.75, 0.25} {
		res := tr.TryMalfunctionScore(ctx, flagData(v))
		if res.Err != nil || res.Score != v {
			t.Fatalf("score(%v) = %+v", v, res)
		}
	}
	if scorer.calls.Load() != 3 {
		t.Fatalf("worker calls = %d, want 3 (persistent connection, no cache)", scorer.calls.Load())
	}
}

func TestWorkerClassificationTravels(t *testing.T) {
	sys := &pipeline.TryFunc{SystemName: "classify", Try: func(_ context.Context, d *dataset.Dataset) pipeline.ScoreResult {
		switch d.Num("x", 0) {
		case 1:
			return pipeline.ScoreResult{Score: 1, Deterministic: true, Attempts: 1}
		case 2:
			return pipeline.ScoreResult{Score: math.NaN(), Err: errors.New("flaky"), Transient: true, Attempts: 1}
		default:
			return pipeline.ScoreResult{Score: math.NaN(), Err: errors.New("misconfigured")}
		}
	}}
	tr := newTransport(startWorker(t, sys), nil, 0)
	defer tr.Close()
	ctx := context.Background()

	det := tr.TryMalfunctionScore(ctx, flagData(1))
	if det.Err != nil || !det.Deterministic || det.Score != 1 {
		t.Fatalf("deterministic result lost: %+v", det)
	}
	tra := tr.TryMalfunctionScore(ctx, flagData(2))
	if tra.Err == nil || !tra.Transient || !errors.Is(tra.Err, pipeline.ErrTransient) {
		t.Fatalf("transient result lost: %+v", tra)
	}
	perm := tr.TryMalfunctionScore(ctx, flagData(3))
	if perm.Err == nil || perm.Transient {
		t.Fatalf("permanent result lost: %+v", perm)
	}
}

func TestTransportRedialsAfterWorkerRestart(t *testing.T) {
	scorer := &valueScorer{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		(&Worker{System: scorer}).Serve(ctx1, ln)
	}()

	tr := newTransport(ln.Addr().String(), nil, 0)
	defer tr.Close()
	if res := tr.TryMalfunctionScore(context.Background(), flagData(0.5)); res.Err != nil {
		t.Fatalf("first score: %+v", res)
	}

	// Kill the worker: the persistent connection dies with it.
	cancel1()
	<-done1
	res := tr.TryMalfunctionScore(context.Background(), flagData(0.5))
	if res.Err == nil || !res.Transient {
		t.Fatalf("dead worker result = %+v, want transient failure", res)
	}

	// Restart on the same address: the transport redials and recovers.
	ln2, err := net.Listen("tcp", ln.Addr().String())
	if err != nil {
		t.Skipf("address not rebindable: %v", err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		(&Worker{System: scorer}).Serve(ctx2, ln2)
	}()
	t.Cleanup(func() { cancel2(); <-done2 })
	if res := tr.TryMalfunctionScore(context.Background(), flagData(0.5)); res.Err != nil {
		t.Fatalf("post-restart score: %+v", res)
	}
}

func TestTransportObservesCancellation(t *testing.T) {
	block := make(chan struct{})
	sys := &pipeline.TryFunc{SystemName: "stuck", Try: func(ctx context.Context, _ *dataset.Dataset) pipeline.ScoreResult {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return pipeline.ScoreResult{Score: math.NaN(), Err: errors.New("stuck"), Transient: true, Attempts: 1}
	}}
	defer close(block)
	tr := newTransport(startWorker(t, sys), nil, 0)
	defer tr.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := tr.TryMalfunctionScore(ctx, flagData(0.5))
	if res.Err == nil || !res.Transient {
		t.Fatalf("result = %+v, want transient cancellation failure", res)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the deadline did not propagate", elapsed)
	}
}

func TestFleetFailoverToHealthyWorker(t *testing.T) {
	scorer := &valueScorer{}
	live := startWorker(t, scorer)
	dead := deadAddr(t)
	fleet := NewFleet(Config{
		Addrs:          []string{dead, live},
		RetryMax:       1,
		RetryBaseDelay: time.Millisecond,
		DialTimeout:    200 * time.Millisecond,
	})
	defer fleet.Close()

	// Evaluate enough datasets that round-robin lands on the dead worker.
	for i := 0; i < 4; i++ {
		res := fleet.TryMalfunctionScore(context.Background(), flagData(float64(i+1)/10))
		if res.Err != nil || res.Score != float64(i+1)/10 {
			t.Fatalf("eval %d = %+v", i, res)
		}
	}
	st := fleet.FleetSnapshot()
	if st.Workers != 2 {
		t.Fatalf("workers = %d", st.Workers)
	}
	if st.Failovers == 0 || st.WorkerFaults == 0 {
		t.Fatalf("stats = %+v, want failovers over the dead worker", st)
	}
	diags := fleet.WorkerDiagnostics()
	var deadDiag *WorkerDiag
	for i := range diags {
		if diags[i].Addr == dead {
			deadDiag = &diags[i]
		}
	}
	if deadDiag == nil || len(deadDiag.RecentFailures) == 0 {
		t.Fatalf("dead worker has no failure diagnostics: %+v", diags)
	}
}

func TestFleetFallbackWhenAllWorkersDown(t *testing.T) {
	local := &valueScorer{}
	fleet := NewFleet(Config{
		Addrs:            []string{deadAddr(t), deadAddr(t)},
		Fallback:         local,
		RetryMax:         1,
		RetryBaseDelay:   time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		DialTimeout:      100 * time.Millisecond,
	})
	defer fleet.Close()

	// First evaluation: both workers fail, breakers open, fallback serves.
	res := fleet.TryMalfunctionScore(context.Background(), flagData(0.6))
	if res.Err != nil || res.Score != 0.6 {
		t.Fatalf("degraded eval = %+v", res)
	}
	// Second evaluation: the fleet is known-down, fallback serves directly.
	res = fleet.TryMalfunctionScore(context.Background(), flagData(0.7))
	if res.Err != nil || res.Score != 0.7 {
		t.Fatalf("second degraded eval = %+v", res)
	}
	st := fleet.FleetSnapshot()
	if st.Healthy != 0 || st.FallbackEvals != 2 {
		t.Fatalf("stats = %+v, want 0 healthy and 2 fallback evals", st)
	}
	if local.calls.Load() != 2 {
		t.Fatalf("fallback calls = %d, want 2", local.calls.Load())
	}
	if fleet.BreakerTrips() == 0 {
		t.Fatal("no breaker trips recorded across the fleet")
	}
}

func TestFleetDownIsFatalWithoutFallback(t *testing.T) {
	fleet := NewFleet(Config{
		Addrs:            []string{deadAddr(t)},
		RetryMax:         1,
		RetryBaseDelay:   time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
		DialTimeout:      100 * time.Millisecond,
	})
	defer fleet.Close()
	res := fleet.TryMalfunctionScore(context.Background(), flagData(0.5))
	if res.Err == nil || !errors.Is(res.Err, ErrFleetDown) {
		t.Fatalf("result = %+v, want ErrFleetDown", res)
	}
	if !errors.Is(res.Err, pipeline.ErrBreakerOpen) {
		t.Fatal("ErrFleetDown must wrap ErrBreakerOpen so searches abort")
	}
	// Second call takes the fast path (no dispatch): still ErrFleetDown.
	res = fleet.TryMalfunctionScore(context.Background(), flagData(0.5))
	if !errors.Is(res.Err, ErrFleetDown) {
		t.Fatalf("fast-path result = %+v", res)
	}
}

func TestFleetHedgesStragglers(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := &pipeline.TryFunc{SystemName: "slow", Try: func(ctx context.Context, d *dataset.Dataset) pipeline.ScoreResult {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return pipeline.ScoreResult{Score: d.Num("x", 0), Attempts: 1}
	}}
	fast := &valueScorer{}
	fleet := NewFleet(Config{
		Addrs:      []string{startWorker(t, slow), startWorker(t, fast)},
		HedgeAfter: 5 * time.Millisecond,
	})
	defer fleet.Close()

	// Round-robin starts at the slow worker; the hedge fires and the fast
	// worker answers first.
	res := fleet.TryMalfunctionScore(context.Background(), flagData(0.9))
	if res.Err != nil || res.Score != 0.9 {
		t.Fatalf("hedged eval = %+v", res)
	}
	st := fleet.FleetSnapshot()
	if st.Hedges != 1 || st.Dispatched != 2 {
		t.Fatalf("stats = %+v, want 1 hedge and 2 dispatches", st)
	}
	if fast.calls.Load() != 1 {
		t.Fatalf("fast worker calls = %d, want the hedged duplicate", fast.calls.Load())
	}
}

func TestNetFaultInjectorDeterministicRecovery(t *testing.T) {
	scorer := &valueScorer{}
	addrs := []string{startWorker(t, scorer), startWorker(t, scorer)}
	for _, failFirst := range []int{1, 2} {
		inj := &NetFaultInjector{FailFirst: failFirst}
		fleet := NewFleet(Config{
			Addrs:          addrs,
			Dial:           inj.DialContext,
			RetryMax:       failFirst + 1,
			RetryBaseDelay: time.Millisecond,
		})
		for i := 0; i < 8; i++ {
			v := float64(i+1) / 100
			res := fleet.TryMalfunctionScore(context.Background(), flagData(v))
			if res.Err != nil || res.Score != v {
				t.Fatalf("K=%d eval %d = %+v", failFirst, i, res)
			}
		}
		if inj.Injected() == 0 {
			t.Fatalf("K=%d: injector idle", failFirst)
		}
		if st := fleet.FleetSnapshot(); st.WorkerFaults != 0 {
			t.Fatalf("K=%d: %d faults leaked past the per-worker retries: %+v", failFirst, st.WorkerFaults, st)
		}
		fleet.Close()
	}
}

func TestFleetRejectsUndecodableDataset(t *testing.T) {
	// A worker that never gets a valid dataset: the client sends CSV the
	// worker cannot parse — simulated by a scorer-side permanent error.
	sys := &pipeline.TryFunc{SystemName: "perm", Try: func(context.Context, *dataset.Dataset) pipeline.ScoreResult {
		return pipeline.ScoreResult{Score: math.NaN(), Err: errors.New("unsupported schema")}
	}}
	fleet := NewFleet(Config{Addrs: []string{startWorker(t, sys)}, RetryMax: 1, RetryBaseDelay: time.Millisecond})
	defer fleet.Close()
	res := fleet.TryMalfunctionScore(context.Background(), flagData(0.5))
	if res.Err == nil || res.Transient {
		t.Fatalf("result = %+v, want permanent failure", res)
	}
}
