package remote_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/pipeline/remote"
	"repro/internal/synth"
)

// benchOracleCost models an expensive black-box oracle, so the benchmark
// measures evaluation economics rather than loopback overhead alone.
const benchOracleCost = 2 * time.Millisecond

// slowSystem charges a fixed latency per evaluation, like an external
// scoring process would.
type slowSystem struct {
	pipeline.System
}

func (s *slowSystem) MalfunctionScore(d *dataset.Dataset) float64 {
	time.Sleep(benchOracleCost)
	return s.System.MalfunctionScore(d)
}

// BenchmarkFleetThroughput measures oracle evaluations per second. The
// local case is the before-this-PR baseline: a serial in-process oracle at
// benchOracleCost per call. The fleet cases fan saturating concurrent
// callers across 1, 4, and 8 single-threaded loopback workers — throughput
// should scale with fleet size, the serialization/framing/TCP overhead
// visible as the gap from the ideal cost/N.
func BenchmarkFleetThroughput(b *testing.B) {
	sc := synth.New(synth.Options{NumPVTs: 8, NumAttrs: 4, Conjunction: 1, CauseTopBenefit: true, Seed: 1})
	slow := &slowSystem{System: sc.System}
	local := pipeline.AsFallible(pipeline.AsContext(slow))
	ctx := context.Background()

	b.Run("local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := local.TryMalfunctionScore(ctx, sc.Fail); res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	})

	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fleet := remote.NewFleet(remote.Config{
				Addrs:      startFleetWorkers(b, slow, workers),
				SystemName: slow.Name(),
			})
			defer fleet.Close()
			b.SetParallelism(16) // enough concurrent callers to saturate 8 workers even at GOMAXPROCS=1
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if res := fleet.TryMalfunctionScore(ctx, sc.Fail); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			})
		})
	}
}
