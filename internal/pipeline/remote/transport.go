package remote

import (
	"context"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
)

// DialFunc opens a connection; the fleet uses net.Dialer.DialContext by
// default. Tests and chaos suites substitute fault-injecting dialers.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// payloadKey carries a pre-encoded request payload through the per-worker
// wrapper stack, so one evaluation hedged or retried across workers
// serializes the dataset exactly once.
type payloadKey struct{}

func withPayload(ctx context.Context, req []byte) context.Context {
	return context.WithValue(ctx, payloadKey{}, req)
}

func payloadFrom(ctx context.Context) ([]byte, bool) {
	req, ok := ctx.Value(payloadKey{}).([]byte)
	return req, ok
}

// transport is the client side of one worker connection: a persistent,
// serialized request/response channel that redials after any failure. All
// transport-level failures are classified transient — the worker may be
// fine and the network flaky, and the per-worker Retry decides how hard to
// insist.
type transport struct {
	addr        string
	dial        DialFunc
	dialTimeout time.Duration

	// reqMu serializes round trips (one in-flight request per connection);
	// connMu guards the connection pointer and closed flag separately, so
	// Close can interrupt an in-flight round trip instead of queueing
	// behind it.
	reqMu  sync.Mutex
	connMu sync.Mutex
	conn   net.Conn
	closed bool
}

func newTransport(addr string, dial DialFunc, dialTimeout time.Duration) *transport {
	if dial == nil {
		var d net.Dialer
		dial = d.DialContext
	}
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	return &transport{addr: addr, dial: dial, dialTimeout: dialTimeout}
}

// Name implements FallibleSystem.
func (t *transport) Name() string { return "remote(" + t.addr + ")" }

// TryMalfunctionScore implements FallibleSystem: one framed round trip,
// holding the connection for its duration. Cancellation and deadlines
// propagate by expiring the connection deadline, which unblocks any
// in-flight read or write.
func (t *transport) TryMalfunctionScore(ctx context.Context, d *dataset.Dataset) pipeline.ScoreResult {
	if err := ctx.Err(); err != nil {
		return transientFailure(0, "not dispatched", pipeline.ContextFailure(ctx))
	}
	req, ok := payloadFrom(ctx)
	if !ok {
		var err error
		if req, err = encodeRequest(d); err != nil {
			return pipeline.ScoreResult{Score: math.NaN(), Err: err}
		}
	}

	t.reqMu.Lock()
	defer t.reqMu.Unlock()
	conn, err := t.ensure(ctx)
	if err != nil {
		return transientFailure(0, "dial "+t.addr, err)
	}
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	} else {
		conn.SetDeadline(time.Time{})
	}

	// The lock is held across the framed I/O on purpose: the protocol is one
	// request/response pair per connection at a time, so round trips must be
	// serialized, and the AfterFunc above expires the connection deadline on
	// cancellation, which unblocks the write/read from under the lock.
	//lint:ignore lockorder round trips on the persistent conn must serialize, and the ctx AfterFunc deadline interrupts the blocked I/O
	if err := writeFrame(conn, req); err != nil {
		t.drop(conn)
		return transientFailure(0, "send to "+t.addr, err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		t.drop(conn)
		return transientFailure(1, "receive from "+t.addr, err)
	}
	res, err := decodeResponse(payload)
	if err != nil {
		t.drop(conn)
		return transientFailure(1, "decode from "+t.addr, err)
	}
	return res
}

// ensure returns the live connection, dialing if needed. Callers hold
// t.reqMu.
func (t *transport) ensure(ctx context.Context) (net.Conn, error) {
	t.connMu.Lock()
	if t.closed {
		t.connMu.Unlock()
		return nil, net.ErrClosed
	}
	if t.conn != nil {
		conn := t.conn
		t.connMu.Unlock()
		return conn, nil
	}
	t.connMu.Unlock()

	dctx, cancel := context.WithTimeout(ctx, t.dialTimeout)
	defer cancel()
	conn, err := t.dial(dctx, "tcp", t.addr)
	if err != nil {
		return nil, err
	}
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if t.closed {
		conn.Close()
		return nil, net.ErrClosed
	}
	t.conn = conn
	return conn, nil
}

// drop discards a failed connection so the next call redials.
func (t *transport) drop(conn net.Conn) {
	conn.Close()
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if t.conn == conn {
		t.conn = nil
	}
}

// Close tears down the persistent connection, interrupting any in-flight
// round trip (its read fails once the connection closes under it).
func (t *transport) Close() {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	t.closed = true
	if t.conn != nil {
		t.conn.SetDeadline(time.Now())
		t.conn.Close()
		t.conn = nil
	}
}

// transientFailure classifies a transport-level failure. attempts is 0 when
// the request provably never reached the worker (dial or send failure) and
// 1 once a response was owed.
func transientFailure(attempts int, stage string, err error) pipeline.ScoreResult {
	return pipeline.ScoreResult{
		Score:     math.NaN(),
		Err:       fmtErr(stage, err),
		Transient: true,
		Attempts:  attempts,
	}
}

func fmtErr(stage string, err error) error {
	return &transportError{stage: stage, err: err}
}

// transportError wraps a transport failure as transient while preserving
// the underlying error for errors.Is/As.
type transportError struct {
	stage string
	err   error
}

func (e *transportError) Error() string {
	return "remote: " + e.stage + ": " + e.err.Error() + ": " + pipeline.ErrTransient.Error()
}

func (e *transportError) Unwrap() []error { return []error{e.err, pipeline.ErrTransient} }
