// Package remote distributes oracle evaluations over a fleet of TCP
// workers. A Worker wraps any pipeline.FallibleSystem behind a listener; a
// FleetSystem is the client half: it implements pipeline.FallibleSystem by
// fanning evaluations across N workers with per-worker retry/breaker
// stacks, health tracking, hedged dispatch of stragglers, and graceful
// degradation to a local fallback.
//
// # Wire protocol
//
// The transport is length-prefixed binary frames over TCP, one
// request/response exchange at a time per connection (no multiplexing —
// the fleet opens one connection per worker and serializes on it):
//
//	frame    := length(uint32 BE) payload
//	request  := version(1) msgScore(1) fingerprint(uint64 BE)
//	            ncols(uint16 BE) {kind(1) nameLen(uint16 BE) name}* csv...
//	response := version(1) status(1) scoreBits(uint64 BE) attempts(uint32 BE) errmsg...
//
// The dataset travels as CSV (dataset.WriteCSV), whose shortest-round-trip
// float formatting reproduces every numeric bit pattern on the far side.
// The schema block pins each column to the sender's exact kind, because CSV
// type inference alone would silently re-type string columns whose values
// look numeric (e.g. "-1"/"1" class labels) — the worker decodes with
// dataset.InferOptions.Kinds so the reconstructed dataset is the one the
// client scored. The fingerprint rides alongside so fault injection and
// worker-side logging can key on the dataset identity without re-hashing.
//
// Status codes classify the outcome exactly like pipeline.ScoreResult:
// statusScore and statusDeterministic carry trustworthy scores;
// statusTransient and statusPermanent carry an error message and no score.
// Transport-level failures (dial errors, resets, deadline expiry) never
// reach the wire — the client classifies them as transient locally.
package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/dataset"
	"repro/internal/pipeline"
)

const (
	protocolVersion = 1
	msgScore        = 1

	// maxFrameSize bounds a frame payload so a corrupt or hostile length
	// prefix cannot force an arbitrary allocation.
	maxFrameSize = 64 << 20

	statusScore         = 0
	statusDeterministic = 1
	statusTransient     = 2
	statusPermanent     = 3
)

// errProtocol marks a malformed frame; connections that produce one are
// dropped rather than resynchronized.
var errProtocol = errors.New("remote: protocol error")

// writeFrame sends one length-prefixed payload as a single Write, so
// network-level fault injection observes whole frames.
func writeFrame(w io.Writer, payload []byte) error {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame receives one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", errProtocol, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeRequest builds a score-request frame payload: header, fingerprint,
// the dataset's column schema, and its CSV serialization. The payload is a
// pure function of the dataset, so the fleet encodes it once per evaluation
// and every retried or hedged dispatch reuses the bytes.
func encodeRequest(d *dataset.Dataset) ([]byte, error) {
	var csv bytes.Buffer
	if err := d.WriteCSV(&csv); err != nil {
		return nil, err
	}
	names := d.ColumnNames()
	buf := make([]byte, 0, 12+8*len(names)+csv.Len())
	buf = append(buf, protocolVersion, msgScore)
	buf = binary.BigEndian.AppendUint64(buf, d.Fingerprint())
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(names)))
	for _, name := range names {
		buf = append(buf, byte(d.Column(name).Kind))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(name)))
		buf = append(buf, name...)
	}
	return append(buf, csv.Bytes()...), nil
}

// decodeRequest splits a score-request payload into the fingerprint, the
// schema (as kind-forcing decode options), and the CSV bytes.
func decodeRequest(payload []byte) (fp uint64, opts dataset.InferOptions, csv []byte, err error) {
	if len(payload) < 12 || payload[0] != protocolVersion || payload[1] != msgScore {
		return 0, opts, nil, fmt.Errorf("%w: bad score request header", errProtocol)
	}
	fp = binary.BigEndian.Uint64(payload[2:])
	ncols := int(binary.BigEndian.Uint16(payload[10:]))
	rest := payload[12:]
	opts.Kinds = make(map[string]dataset.Kind, ncols)
	for i := 0; i < ncols; i++ {
		if len(rest) < 3 {
			return 0, opts, nil, fmt.Errorf("%w: truncated schema block", errProtocol)
		}
		kind := dataset.Kind(rest[0])
		n := int(binary.BigEndian.Uint16(rest[1:]))
		if len(rest) < 3+n {
			return 0, opts, nil, fmt.Errorf("%w: truncated schema block", errProtocol)
		}
		opts.Kinds[string(rest[3:3+n])] = kind
		rest = rest[3+n:]
	}
	return fp, opts, rest, nil
}

// parseRequestFingerprint extracts the fingerprint from a fully framed
// request as written by writeFrame, without consuming it. It exists for
// network-level fault injection, which keys faults on dataset identity.
func parseRequestFingerprint(frame []byte) (uint64, bool) {
	if len(frame) < 4+12 {
		return 0, false
	}
	if int(binary.BigEndian.Uint32(frame)) != len(frame)-4 {
		return 0, false
	}
	if frame[4] != protocolVersion || frame[5] != msgScore {
		return 0, false
	}
	return binary.BigEndian.Uint64(frame[6:]), true
}

// encodeResponse flattens a ScoreResult into a response payload.
func encodeResponse(res pipeline.ScoreResult) []byte {
	status := byte(statusScore)
	msg := ""
	switch {
	case res.Err != nil && res.Transient:
		status = statusTransient
		msg = res.Err.Error()
	case res.Err != nil:
		status = statusPermanent
		msg = res.Err.Error()
	case res.Deterministic:
		status = statusDeterministic
	}
	buf := make([]byte, 14+len(msg))
	buf[0] = protocolVersion
	buf[1] = status
	binary.BigEndian.PutUint64(buf[2:], math.Float64bits(res.Score))
	binary.BigEndian.PutUint32(buf[10:], uint32(res.Attempts))
	copy(buf[14:], msg)
	return buf
}

// decodeResponse rebuilds the ScoreResult a worker sent. Remote failures
// come back classified: transient ones wrap pipeline.ErrTransient so retry
// stacks treat them exactly like local transient failures.
func decodeResponse(payload []byte) (pipeline.ScoreResult, error) {
	if len(payload) < 14 || payload[0] != protocolVersion {
		return pipeline.ScoreResult{}, fmt.Errorf("%w: bad score response header", errProtocol)
	}
	score := math.Float64frombits(binary.BigEndian.Uint64(payload[2:]))
	attempts := int(binary.BigEndian.Uint32(payload[10:]))
	msg := string(payload[14:])
	switch payload[1] {
	case statusScore:
		return pipeline.ScoreResult{Score: score, Attempts: attempts}, nil
	case statusDeterministic:
		return pipeline.ScoreResult{Score: score, Deterministic: true, Attempts: attempts}, nil
	case statusTransient:
		return pipeline.ScoreResult{
			Score:     math.NaN(),
			Err:       fmt.Errorf("remote worker: %s: %w", msg, pipeline.ErrTransient),
			Transient: true,
			Attempts:  attempts,
		}, nil
	case statusPermanent:
		return pipeline.ScoreResult{
			Score:    math.NaN(),
			Err:      fmt.Errorf("remote worker: %s", msg),
			Attempts: attempts,
		}, nil
	}
	return pipeline.ScoreResult{}, fmt.Errorf("%w: unknown status %d", errProtocol, payload[1])
}
