package remote

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
)

// ErrFleetDown is returned when every fleet worker is unhealthy and no
// fallback is configured. It wraps pipeline.ErrBreakerOpen, so searches
// treat it exactly like a single dead scorer's open circuit: fatal, abort
// rather than burn the budget.
var ErrFleetDown = fmt.Errorf("remote: every fleet worker unavailable: %w", pipeline.ErrBreakerOpen)

// failureRingSize bounds the per-worker failure diagnostics ring, mirroring
// pipeline.External's.
const failureRingSize = 16

// Config parameterizes a FleetSystem.
type Config struct {
	// Addrs lists the worker endpoints (required, host:port each).
	Addrs []string
	// SystemName is the oracle identity the fleet reports; it must match
	// the name the workers' wrapped systems carry, since score caches key
	// on it. Empty derives "fleet(addr, ...)".
	SystemName string
	// Fallback, when set, is a local scorer used while every worker is
	// unhealthy — graceful degradation instead of a dead search.
	Fallback pipeline.FallibleSystem
	// HedgeAfter launches a speculative duplicate of an in-flight
	// evaluation on the next healthy worker when the primary has not
	// answered within this duration; the first answer wins. Zero disables
	// hedging.
	HedgeAfter time.Duration
	// RetryMax, RetryBaseDelay, RetryMaxDelay parameterize the per-worker
	// pipeline.Retry (zero values mean that type's defaults).
	RetryMax      int
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// BreakerThreshold and BreakerCooldown parameterize the per-worker
	// pipeline.Breaker (zero values mean that type's defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Dial overrides the dialer — the seam where tests and the chaos suite
	// inject network faults. Nil means net.Dialer.DialContext.
	Dial DialFunc
}

// fleetWorker is one endpoint with its client stack and diagnostics.
type fleetWorker struct {
	addr    string
	tr      *transport
	breaker *pipeline.Breaker
	stack   pipeline.FallibleSystem

	mu    sync.Mutex
	ring  [failureRingSize]string
	ringN int
}

// recordFailure appends a failure reason to the worker's bounded ring.
func (w *fleetWorker) recordFailure(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ring[w.ringN%failureRingSize] = err.Error()
	w.ringN++
}

// recentFailures returns up to n recent failure reasons, newest first.
func (w *fleetWorker) recentFailures(n int) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	stored := w.ringN
	if stored > failureRingSize {
		stored = failureRingSize
	}
	if n > stored {
		n = stored
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, w.ring[(w.ringN-1-i)%failureRingSize])
	}
	return out
}

// WorkerDiag is one worker's health and failure history, for reports.
type WorkerDiag struct {
	Addr           string   `json:"addr"`
	Healthy        bool     `json:"healthy"`
	BreakerTrips   int      `json:"breaker_trips"`
	RecentFailures []string `json:"recent_failures,omitempty"`
}

// FleetSystem implements pipeline.FallibleSystem over N remote workers:
// per-worker Breaker{Retry{transport}} stacks, round-robin placement over
// healthy workers, failover on worker failure, optional hedged dispatch,
// and degradation to Fallback (or ErrFleetDown) when the whole fleet is
// unhealthy. It also implements pipeline.FleetReporter and
// pipeline.TripCounter, so the engine folds fleet behavior into its Stats.
type FleetSystem struct {
	name       string
	fallback   pipeline.FallibleSystem
	hedgeAfter time.Duration
	workers    []*fleetWorker
	rr         atomic.Uint64

	mu            sync.Mutex
	dispatched    int
	hedges        int
	failovers     int
	workerFaults  int
	fallbackEvals int
}

// NewFleet builds the client stack for each configured worker.
func NewFleet(cfg Config) *FleetSystem {
	name := cfg.SystemName
	if name == "" {
		name = "fleet(" + strings.Join(cfg.Addrs, ", ") + ")"
	}
	f := &FleetSystem{name: name, fallback: cfg.Fallback, hedgeAfter: cfg.HedgeAfter}
	for _, addr := range cfg.Addrs {
		tr := newTransport(addr, cfg.Dial, cfg.DialTimeout)
		br := &pipeline.Breaker{
			System: &pipeline.Retry{
				System:    tr,
				Max:       cfg.RetryMax,
				BaseDelay: cfg.RetryBaseDelay,
				MaxDelay:  cfg.RetryMaxDelay,
			},
			FailureThreshold: cfg.BreakerThreshold,
			Cooldown:         cfg.BreakerCooldown,
		}
		f.workers = append(f.workers, &fleetWorker{addr: addr, tr: tr, breaker: br, stack: br})
	}
	return f
}

// Name implements FallibleSystem.
func (f *FleetSystem) Name() string { return f.name }

// Close tears down every worker connection.
func (f *FleetSystem) Close() {
	for _, w := range f.workers {
		w.tr.Close()
	}
}

// healthyOrder returns the workers currently accepting evaluations,
// rotated by the round-robin counter so load spreads across the fleet.
func (f *FleetSystem) healthyOrder() []*fleetWorker {
	var healthy []*fleetWorker
	for _, w := range f.workers {
		if !w.breaker.Open() {
			healthy = append(healthy, w)
		}
	}
	if len(healthy) > 1 {
		start := int(f.rr.Add(1)-1) % len(healthy)
		healthy = append(healthy[start:], healthy[:start]...)
	}
	return healthy
}

// TryMalfunctionScore implements FallibleSystem. The dataset is serialized
// once; the evaluation runs on the first healthy worker, fails over to the
// next on worker failure, and — when hedging is enabled — speculatively
// duplicates onto the next worker if the primary straggles. The first
// successful answer wins; since every worker computes the same pure score,
// which worker answers never changes the result.
func (f *FleetSystem) TryMalfunctionScore(ctx context.Context, d *dataset.Dataset) pipeline.ScoreResult {
	order := f.healthyOrder()
	if len(order) == 0 {
		return f.degrade(ctx, d, 0)
	}
	req, err := encodeRequest(d)
	if err != nil {
		return pipeline.ScoreResult{Score: math.NaN(), Err: err}
	}
	ctx = withPayload(ctx, req)

	results := make(chan pipeline.ScoreResult, len(order))
	launched := 0
	launch := func() {
		w := order[launched]
		launched++
		f.count(func() { f.dispatched++ })
		go func() {
			r := w.stack.TryMalfunctionScore(ctx, d)
			if r.Err != nil && ctx.Err() == nil {
				w.recordFailure(r.Err)
			}
			results <- r
		}()
	}
	launch()

	var hedge <-chan time.Time
	if f.hedgeAfter > 0 && len(order) > 1 {
		t := time.NewTimer(f.hedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	attempts := 0
	received := 0
	var last pipeline.ScoreResult
	for {
		select {
		case r := <-results:
			received++
			attempts += r.Attempts
			if r.Err == nil {
				r.Attempts = attempts
				return r
			}
			f.count(func() { f.workerFaults++ })
			last = r
			if launched < len(order) {
				f.count(func() { f.failovers++ })
				launch()
				continue
			}
			if received == launched {
				// Every launched worker failed. If any breaker is still
				// closed the failure stays transient (the engine refunds
				// it); once the whole fleet's breakers are open, degrade.
				if len(f.healthyOrder()) == 0 {
					return f.degrade(ctx, d, attempts)
				}
				last.Attempts = attempts
				return last
			}
		case <-hedge:
			hedge = nil
			if launched < len(order) {
				f.count(func() { f.hedges++ })
				launch()
			}
		case <-ctx.Done():
			return pipeline.ScoreResult{
				Score:     math.NaN(),
				Err:       fmt.Errorf("remote: abandoned: %w", pipeline.ContextFailure(ctx)),
				Transient: true,
				Attempts:  attempts,
			}
		}
	}
}

// degrade serves an evaluation when no worker is healthy: through the
// fallback scorer if configured, otherwise as the fleet-down fatal error.
func (f *FleetSystem) degrade(ctx context.Context, d *dataset.Dataset, attempts int) pipeline.ScoreResult {
	if f.fallback != nil {
		f.count(func() { f.fallbackEvals++ })
		r := f.fallback.TryMalfunctionScore(ctx, d)
		r.Attempts += attempts
		return r
	}
	return pipeline.ScoreResult{Score: math.NaN(), Err: ErrFleetDown, Attempts: attempts}
}

func (f *FleetSystem) count(update func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	update()
}

// FleetSnapshot implements pipeline.FleetReporter.
func (f *FleetSystem) FleetSnapshot() pipeline.FleetStats {
	healthy := 0
	for _, w := range f.workers {
		if !w.breaker.Open() {
			healthy++
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return pipeline.FleetStats{
		Workers:       len(f.workers),
		Healthy:       healthy,
		Dispatched:    f.dispatched,
		Hedges:        f.hedges,
		Failovers:     f.failovers,
		WorkerFaults:  f.workerFaults,
		FallbackEvals: f.fallbackEvals,
	}
}

// BreakerTrips implements pipeline.TripCounter: total circuit openings
// across the fleet.
func (f *FleetSystem) BreakerTrips() int {
	trips := 0
	for _, w := range f.workers {
		trips += w.breaker.BreakerTrips()
	}
	return trips
}

// WorkerDiagnostics snapshots per-worker health and recent failures,
// newest first, for reports and exit diagnostics.
func (f *FleetSystem) WorkerDiagnostics() []WorkerDiag {
	out := make([]WorkerDiag, 0, len(f.workers))
	for _, w := range f.workers {
		out = append(out, WorkerDiag{
			Addr:           w.addr,
			Healthy:        !w.breaker.Open(),
			BreakerTrips:   w.breaker.BreakerTrips(),
			RecentFailures: w.recentFailures(failureRingSize),
		})
	}
	return out
}
