package pipeline

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dataset"
)

func fpData(v float64) *dataset.Dataset {
	d := dataset.New()
	d.MustAddNumeric("x", []float64{v})
	return d
}

func constFallible(score float64) FallibleSystem {
	return &TryFunc{SystemName: "const", Try: func(context.Context, *dataset.Dataset) ScoreResult {
		return ScoreResult{Score: score, Attempts: 1}
	}}
}

func TestFaultInjectorFailFirstPerDataset(t *testing.T) {
	fi := &FaultInjector{System: constFallible(0.3), FailFirst: 2}
	ctx := context.Background()
	a, b := fpData(1), fpData(2)

	for i := 0; i < 2; i++ {
		res := fi.TryMalfunctionScore(ctx, a)
		if !errors.Is(res.Err, ErrInjected) || !errors.Is(res.Err, ErrTransient) {
			t.Fatalf("attempt %d on a: err = %v, want injected transient", i+1, res.Err)
		}
	}
	if res := fi.TryMalfunctionScore(ctx, a); res.Err != nil || res.Score != 0.3 {
		t.Fatalf("third attempt on a = %+v, want success", res)
	}
	// The schedule is per fingerprint: dataset b starts its own K failures
	// even though the injector has globally seen 3 calls already.
	if res := fi.TryMalfunctionScore(ctx, b); !errors.Is(res.Err, ErrInjected) {
		t.Fatalf("first attempt on b = %+v, want injected fault", res)
	}
	if fi.Calls() != 4 || fi.Injected() != 3 {
		t.Fatalf("calls = %d, injected = %d, want 4/3", fi.Calls(), fi.Injected())
	}
}

func TestFaultInjectorFailCallsByGlobalIndex(t *testing.T) {
	fi := &FaultInjector{System: constFallible(0.1), FailCalls: map[int]bool{2: true}}
	ctx := context.Background()
	d := fpData(1)
	if res := fi.TryMalfunctionScore(ctx, d); res.Err != nil {
		t.Fatalf("call 1 = %+v", res)
	}
	if res := fi.TryMalfunctionScore(ctx, d); !errors.Is(res.Err, ErrInjected) {
		t.Fatalf("call 2 = %+v, want injected fault", res)
	}
	if res := fi.TryMalfunctionScore(ctx, d); res.Err != nil {
		t.Fatalf("call 3 = %+v", res)
	}
}

func TestFaultInjectorPermanentFail(t *testing.T) {
	fi := &FaultInjector{System: constFallible(0.1), PermanentFail: true}
	for i := 0; i < 4; i++ {
		res := fi.TryMalfunctionScore(context.Background(), fpData(float64(i)))
		if !errors.Is(res.Err, ErrInjected) || !res.Transient {
			t.Fatalf("call %d = %+v, want injected transient", i, res)
		}
	}
	if fi.Injected() != 4 {
		t.Fatalf("injected = %d", fi.Injected())
	}
}

func TestFaultInjectorRateIsSeedDeterministic(t *testing.T) {
	pattern := func() []bool {
		fi := &FaultInjector{System: constFallible(0.1), Rate: 0.5, Seed: 42}
		var out []bool
		for v := 0; v < 8; v++ {
			d := fpData(float64(v))
			for attempt := 0; attempt < 4; attempt++ {
				res := fi.TryMalfunctionScore(context.Background(), d)
				out = append(out, res.Err != nil)
			}
		}
		return out
	}
	a, b := pattern(), pattern()
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injection decision %d differs across identical runs", i)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Fatalf("rate 0.5 should inject some but not all faults: %v", a)
	}
}

func TestFaultInjectorLatencyObservesContext(t *testing.T) {
	fi := &FaultInjector{System: constFallible(0.1), Latency: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	res := fi.TryMalfunctionScore(ctx, fpData(1))
	if time.Since(start) > 2*time.Second {
		t.Fatal("latency injection ignored the context")
	}
	if res.Err == nil || !res.Transient {
		t.Fatalf("interrupted latency = %+v, want transient failure", res)
	}
}
