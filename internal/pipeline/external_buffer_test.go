package pipeline

import "testing"

func TestCappedBufferExactLimitNotTruncated(t *testing.T) {
	b := &cappedBuffer{limit: 8}
	n, err := b.Write([]byte("12345678"))
	if err != nil || n != 8 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if b.truncated {
		t.Fatal("an exact-limit write must not be flagged as truncated")
	}
	if got := b.buf.String(); got != "12345678" {
		t.Fatalf("buf = %q", got)
	}
}

func TestCappedBufferMultiWriteTruncation(t *testing.T) {
	b := &cappedBuffer{limit: 5}
	if n, err := b.Write([]byte("abc")); err != nil || n != 3 {
		t.Fatalf("first write = %d, %v", n, err)
	}
	// The second write overflows: the excess is dropped, but the writer must
	// still report full consumption so the child keeps a working pipe.
	if n, err := b.Write([]byte("defg")); err != nil || n != 4 {
		t.Fatalf("overflow write = %d, %v", n, err)
	}
	if !b.truncated {
		t.Fatal("overflow not flagged")
	}
	if got := b.buf.String(); got != "abcde" {
		t.Fatalf("buf = %q, want the limit-bound prefix", got)
	}
	// Writes after the buffer is full are swallowed entirely.
	if n, err := b.Write([]byte("xyz")); err != nil || n != 3 {
		t.Fatalf("post-full write = %d, %v", n, err)
	}
	if got := b.buf.String(); got != "abcde" {
		t.Fatalf("buf grew past the limit: %q", got)
	}
}

func TestStderrExcerptEmpty(t *testing.T) {
	if got := stderrExcerpt(&cappedBuffer{limit: 8}); got != "" {
		t.Fatalf("excerpt of empty stderr = %q, want \"\"", got)
	}
	b := &cappedBuffer{limit: 64}
	b.Write([]byte("  \n\t "))
	if got := stderrExcerpt(b); got != "" {
		t.Fatalf("excerpt of whitespace-only stderr = %q, want \"\"", got)
	}
}

func TestClipRuneBoundary(t *testing.T) {
	// "é" is 2 bytes; clipping at 3 bytes lands mid-rune and must back off.
	if got := clip("ééé", 3); got != "é…" {
		t.Fatalf("clip mid-rune = %q, want %q", got, "é…")
	}
	if got := clip("ééé", 4); got != "éé…" {
		t.Fatalf("clip on boundary = %q, want %q", got, "éé…")
	}
	if got := clip("short", 10); got != "short" {
		t.Fatalf("clip under limit = %q", got)
	}
	if got := clip("abcdef", 3); got != "abc…" {
		t.Fatalf("clip ascii = %q", got)
	}
}
