package pipeline

import (
	"sync"
	"testing"

	"repro/internal/dataset"
)

func constSystem(score float64) System {
	return &Func{SystemName: "const", Score: func(*dataset.Dataset) float64 { return score }}
}

func TestFuncAdapter(t *testing.T) {
	sys := constSystem(0.42)
	if sys.Name() != "const" {
		t.Errorf("Name = %q", sys.Name())
	}
	if got := sys.MalfunctionScore(dataset.New()); got != 0.42 {
		t.Errorf("score = %g", got)
	}
}

func TestOracleCounting(t *testing.T) {
	o := NewOracle(constSystem(0.5))
	d := dataset.New()
	if o.Calls() != 0 {
		t.Fatal("fresh oracle has calls")
	}
	o.MalfunctionScore(d)
	o.MalfunctionScore(d)
	if o.Calls() != 2 {
		t.Errorf("Calls = %d, want 2", o.Calls())
	}
	// Exempt evaluations are not counted.
	if got := o.Exempt(d); got != 0.5 {
		t.Errorf("Exempt = %g", got)
	}
	if o.Calls() != 2 {
		t.Errorf("Exempt incremented the counter: %d", o.Calls())
	}
	o.Reset()
	if o.Calls() != 0 {
		t.Error("Reset did not zero the counter")
	}
	if o.Name() != "const" {
		t.Error("oracle should expose the wrapped system's name")
	}
}

func TestOracleConcurrentCounting(t *testing.T) {
	o := NewOracle(constSystem(0.1))
	d := dataset.New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				o.MalfunctionScore(d)
			}
		}()
	}
	wg.Wait()
	if o.Calls() != 800 {
		t.Errorf("Calls = %d, want 800", o.Calls())
	}
}
