package pipeline

// FleetStats is a snapshot of a remote oracle fleet's counters, surfaced
// through the optional FleetReporter capability so the engine can fold
// fleet behavior into its Stats without importing the transport layer.
type FleetStats struct {
	// Workers is the configured fleet size; Healthy is how many workers
	// were accepting evaluations at snapshot time.
	Workers, Healthy int
	// Dispatched counts evaluations sent to remote workers (hedged
	// duplicates included).
	Dispatched int
	// Hedges counts speculative duplicate dispatches launched because the
	// primary worker straggled.
	Hedges int
	// Failovers counts evaluations retried on another worker after a
	// worker-level failure.
	Failovers int
	// WorkerFaults counts transport/oracle failures observed across all
	// workers (before any failover or fallback recovered them).
	WorkerFaults int
	// FallbackEvals counts evaluations served by the configured local
	// fallback system because every worker was unhealthy.
	FallbackEvals int
}

// FleetReporter is the optional capability a FallibleSystem (or a wrapper
// chain containing a remote fleet) implements to expose its fleet counters.
// The engine snapshots it into Stats, like TripCounter.
type FleetReporter interface {
	FleetSnapshot() FleetStats
}

// FleetSnapshot forwards the inner chain's fleet counters, keeping the
// capability visible when a Retry wraps a fleet.
func (r *Retry) FleetSnapshot() FleetStats {
	if fr, ok := r.System.(FleetReporter); ok {
		return fr.FleetSnapshot()
	}
	return FleetStats{}
}

// FleetSnapshot forwards the inner chain's fleet counters through a Breaker.
func (b *Breaker) FleetSnapshot() FleetStats {
	if fr, ok := b.System.(FleetReporter); ok {
		return fr.FleetSnapshot()
	}
	return FleetStats{}
}

// FleetSnapshot forwards the inner chain's fleet counters through a
// FaultInjector.
func (f *FaultInjector) FleetSnapshot() FleetStats {
	if fr, ok := f.System.(FleetReporter); ok {
		return fr.FleetSnapshot()
	}
	return FleetStats{}
}
