// Package causal estimates pairwise causal coefficients between attributes,
// standing in for the TETRAD toolkit that the paper uses to parameterize
// causal Indep profiles (Figure 1, row 9).
//
// The model is a linear non-Gaussian pairwise SEM: for standardized x and y,
// the causal coefficient magnitude is the standardized regression coefficient
// (equal to Pearson's r), and the direction is decided by the
// Hyvärinen–Smith cumulant criterion: with ρ = corr(x, y) and
// Δ = E[x³y] − E[xy³], ρ·Δ > 0 favours x→y and ρ·Δ < 0 favours y→x.
// This captures exactly what the profile needs — a coefficient per attribute
// pair whose magnitude a transformation can reduce — without a full
// constraint-based search.
package causal

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Edge is a directed causal relationship with its coefficient magnitude.
type Edge struct {
	From  string
	To    string
	Coeff float64
}

// Coefficient returns the magnitude of the pairwise causal coefficient
// between x and y under the linear SEM: |corr(x, y)| after standardization.
// It returns 0 for degenerate inputs.
func Coefficient(x, y []float64) float64 {
	return math.Abs(stats.Pearson(x, y))
}

// Direction returns +1 when the cumulant criterion favours x→y, -1 when it
// favours y→x, and 0 when the evidence is negligible (near-Gaussian or
// near-independent data).
func Direction(x, y []float64) int {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	zx := stats.Standardize(x)
	zy := stats.Standardize(y)
	rho := stats.Pearson(zx, zy)
	var d float64
	for i := 0; i < n; i++ {
		d += zx[i]*zx[i]*zx[i]*zy[i] - zx[i]*zy[i]*zy[i]*zy[i]
	}
	d /= float64(n)
	// For a true x→y link, ρ·Δ has the sign of the cause's excess kurtosis
	// (ρΔ = b²(1−b²)(κ−3) in the linear SEM), so correct by the sign of the
	// observed joint excess kurtosis to handle sub- and super-Gaussian data.
	excess := (stats.Kurtosis(zx)+stats.Kurtosis(zy))/2 - 3
	if math.Abs(excess) < 1e-2 {
		return 0 // near-Gaussian: direction unidentifiable
	}
	score := rho * d
	if excess < 0 {
		score = -score
	}
	const tiny = 1e-3
	switch {
	case score > tiny:
		return 1
	case score < -tiny:
		return -1
	default:
		return 0
	}
}

// encode converts a column to a numeric vector: numeric columns pass through
// (NULLs as the column mean), string columns map to sorted level indices.
func encode(d *dataset.Dataset, attr string) []float64 {
	c := d.Column(attr)
	if c == nil {
		return nil
	}
	n := d.NumRows()
	out := make([]float64, n)
	if c.Kind == dataset.Numeric {
		mean := stats.Mean(d.NumericValues(attr))
		if math.IsNaN(mean) {
			mean = 0
		}
		for i := 0; i < n; i++ {
			if c.NullAt(i) {
				out[i] = mean
			} else {
				out[i] = c.NumAt(i)
			}
		}
		return out
	}
	levels := d.DistinctStrings(attr)
	idx := make(map[string]float64, len(levels))
	for i, l := range levels {
		idx[l] = float64(i)
	}
	for i := 0; i < n; i++ {
		if !c.NullAt(i) {
			out[i] = idx[c.StrAt(i)]
		}
	}
	return out
}

// LearnGraph estimates a causal edge for every attribute pair whose
// coefficient magnitude is at least minCoeff. Edges are oriented by the
// cumulant criterion; undecided pairs default to lexicographic order so the
// output is deterministic. Attrs defaults to all columns when nil.
func LearnGraph(d *dataset.Dataset, attrs []string, minCoeff float64) []Edge {
	if attrs == nil {
		attrs = d.ColumnNames()
	}
	vecs := make(map[string][]float64, len(attrs))
	for _, a := range attrs {
		vecs[a] = encode(d, a)
	}
	var edges []Edge
	for i := 0; i < len(attrs); i++ {
		for j := i + 1; j < len(attrs); j++ {
			a, b := attrs[i], attrs[j]
			co := Coefficient(vecs[a], vecs[b])
			if co < minCoeff {
				continue
			}
			from, to := a, b
			if Direction(vecs[a], vecs[b]) < 0 {
				from, to = b, a
			}
			edges = append(edges, Edge{From: from, To: to, Coeff: co})
		}
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].From != edges[y].From {
			return edges[x].From < edges[y].From
		}
		return edges[x].To < edges[y].To
	})
	return edges
}

// PairCoefficient estimates the causal coefficient magnitude between two
// attributes of a dataset (numeric or categorical).
func PairCoefficient(d *dataset.Dataset, a, b string) float64 {
	return Coefficient(encode(d, a), encode(d, b))
}
