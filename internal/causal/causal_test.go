package causal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// lingamPair generates y = coef*x + noise with uniform (non-Gaussian) x,
// which the cumulant criterion can orient.
func lingamPair(rng *rand.Rand, n int, coef float64) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1 // uniform: non-Gaussian
		y[i] = coef*x[i] + 0.2*(rng.Float64()*2-1)
	}
	return x, y
}

func TestCoefficient(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := lingamPair(rng, 5000, 1)
	if c := Coefficient(x, y); c < 0.9 {
		t.Errorf("strongly coupled pair coefficient = %g, want >0.9", c)
	}
	z := make([]float64, 5000)
	for i := range z {
		z[i] = rng.Float64()
	}
	if c := Coefficient(x, z); c > 0.1 {
		t.Errorf("independent pair coefficient = %g, want ≈0", c)
	}
	if Coefficient(nil, nil) != 0 {
		t.Error("degenerate input should be 0")
	}
}

func TestDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := lingamPair(rng, 20000, 0.8)
	if Direction(x, y) != 1 {
		t.Error("x→y pair should orient forward")
	}
	if Direction(y, x) != -1 {
		t.Error("swapped arguments should orient backward")
	}
	// Independent data is undecided.
	z := make([]float64, 20000)
	for i := range z {
		z[i] = rng.Float64()
	}
	if d := Direction(x, z); d != 0 {
		t.Errorf("independent pair direction = %d, want 0", d)
	}
	if Direction(nil, []float64{1}) != 0 {
		t.Error("length mismatch should be 0")
	}
}

func TestLearnGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 5000
	x, y := lingamPair(rng, n, 1)
	noise := make([]float64, n)
	for i := range noise {
		noise[i] = rng.Float64()
	}
	d := dataset.New().
		MustAddNumeric("x", x).
		MustAddNumeric("y", y).
		MustAddNumeric("noise", noise)
	edges := LearnGraph(d, nil, 0.5)
	if len(edges) != 1 {
		t.Fatalf("edges = %+v, want exactly the x-y edge", edges)
	}
	if edges[0].From != "x" || edges[0].To != "y" {
		t.Errorf("edge = %+v, want x→y", edges[0])
	}
	if edges[0].Coeff < 0.9 {
		t.Errorf("edge coeff = %g", edges[0].Coeff)
	}
}

func TestLearnGraphCategorical(t *testing.T) {
	// race perfectly determines zip → coefficient magnitude near 1.
	race := []string{"A", "A", "W", "W", "A", "W", "A", "W"}
	zip := []string{"01004", "01004", "01101", "01101", "01004", "01101", "01004", "01101"}
	d := dataset.New().
		MustAddCategorical("race", race).
		MustAddCategorical("zip", zip)
	edges := LearnGraph(d, nil, 0.8)
	if len(edges) != 1 {
		t.Fatalf("edges = %+v", edges)
	}
	if math.Abs(edges[0].Coeff-1) > 1e-9 {
		t.Errorf("deterministic pair coeff = %g, want 1", edges[0].Coeff)
	}
}

func TestPairCoefficientWithNulls(t *testing.T) {
	d := dataset.New()
	if err := d.AddNumericColumn("a", []float64{1, 2, 3, 4}, []bool{false, true, false, false}); err != nil {
		t.Fatal(err)
	}
	d.MustAddNumeric("b", []float64{1, 2, 3, 4})
	// Should not panic; NULL imputed with mean.
	c := PairCoefficient(d, "a", "b")
	if c < 0 || c > 1 {
		t.Errorf("coefficient out of range: %g", c)
	}
	if PairCoefficient(d, "a", "missing") != 0 {
		t.Error("missing attribute should yield 0")
	}
}
