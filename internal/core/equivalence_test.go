package core_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/workload"
)

// searchSignature captures everything class selection must preserve:
// the discriminative PVT set (strings, in order), the minimal explanation,
// the intervention count, and the final score.
func searchSignature(t *testing.T, sys pipeline.System, tau float64, pass, fail *dataset.Dataset, opts profile.Options, workers int) string {
	t.Helper()
	opts.Workers = workers
	pvts := core.DiscoverPVTs(pass, fail, opts, 1e-9)
	keys := make([]string, len(pvts))
	for i, p := range pvts {
		keys[i] = p.String()
	}
	e := &core.Explainer{System: sys, Tau: tau, Seed: 7, Options: &opts, Workers: workers}
	res, err := e.ExplainGreedy(pass, fail)
	if err != nil && !errors.Is(err, core.ErrNoExplanation) {
		t.Fatalf("search failed: %v", err)
	}
	return fmt.Sprintf("pvts=%s\nexpl=%s\ninterventions=%d\nfinal=%.12f\nfound=%v",
		strings.Join(keys, ";"), res.ExplanationString(), res.Interventions, res.FinalScore, res.Found)
}

// TestClassesSpellingsEquivalent pins the contract of the one remaining
// class-selection surface: logically equal Options.Classes spellings —
// sparse overrides on top of the registry defaults versus an exhaustive
// map naming every class explicitly — must stay byte-identical through the
// full search (same discriminative PVTs, same explanation, same
// intervention count, same final score), at any worker count.
func TestClassesSpellingsEquivalent(t *testing.T) {
	const rows = 300

	// exhaustive expands a sparse Classes override into the full effective
	// class set, naming every registered class explicitly.
	exhaustive := func(o *profile.Options) {
		full := make(map[string]bool)
		for _, name := range o.EnabledClasses() {
			full[name] = true
		}
		for _, c := range profile.Discoverers() {
			if !full[c.Name] {
				full[c.Name] = false
			}
		}
		o.Classes = full
	}

	cases := []struct {
		name   string
		load   func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options)
		sparse func(o *profile.Options)
	}{
		{
			name: "sentiment",
			load: func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options) {
				s := workload.NewSentimentScenario(rows, 1)
				return s.System, s.Tau, s.Pass, s.Fail, s.Options
			},
			sparse: func(o *profile.Options) {
				o.Classes = map[string]bool{"distribution": true, "fd": true}
			},
		},
		{
			name: "income",
			load: func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options) {
				s := workload.NewIncomeScenario(rows, 1)
				return s.System, s.Tau, s.Pass, s.Fail, s.Options
			},
			sparse: func(o *profile.Options) {
				o.Classes = map[string]bool{"indep-causal": true, "unique": true}
			},
		},
		{
			name: "cardio",
			load: func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options) {
				s := workload.NewCardioScenario(rows, 1)
				return s.System, s.Tau, s.Pass, s.Fail, s.Options
			},
			sparse: func(o *profile.Options) {
				o.Classes = map[string]bool{"selectivity": false}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, tau, pass, fail, base := tc.load()
			for _, workers := range []int{1, 8} {
				sparseOpts := base
				tc.sparse(&sparseOpts)
				fullOpts := sparseOpts
				exhaustive(&fullOpts)
				ssig := searchSignature(t, sys, tau, pass, fail, sparseOpts, workers)
				fsig := searchSignature(t, sys, tau, pass, fail, fullOpts, workers)
				if ssig != fsig {
					t.Errorf("workers=%d: sparse and exhaustive Classes spellings diverge\nsparse:\n%s\nexhaustive:\n%s",
						workers, ssig, fsig)
				}
				if workers == 1 {
					// The two worker counts must agree with each other too.
					if w8 := searchSignature(t, sys, tau, pass, fail, sparseOpts, 8); w8 != ssig {
						t.Errorf("worker counts diverge\nworkers=1:\n%s\nworkers=8:\n%s", ssig, w8)
					}
				}
			}
		})
	}
}
