package core_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/workload"
)

// searchSignature captures everything the registry refactor must preserve:
// the discriminative PVT set (strings, in order), the minimal explanation,
// the intervention count, and the final score.
func searchSignature(t *testing.T, sys pipeline.System, tau float64, pass, fail *dataset.Dataset, opts profile.Options, workers int) string {
	t.Helper()
	opts.Workers = workers
	pvts := core.DiscoverPVTs(pass, fail, opts, 1e-9)
	keys := make([]string, len(pvts))
	for i, p := range pvts {
		keys[i] = p.String()
	}
	e := &core.Explainer{System: sys, Tau: tau, Seed: 7, Options: &opts, Workers: workers}
	res, err := e.ExplainGreedy(pass, fail)
	if err != nil && !errors.Is(err, core.ErrNoExplanation) {
		t.Fatalf("search failed: %v", err)
	}
	return fmt.Sprintf("pvts=%s\nexpl=%s\ninterventions=%d\nfinal=%.12f\nfound=%v",
		strings.Join(keys, ";"), res.ExplanationString(), res.Interventions, res.FinalScore, res.Found)
}

// TestClassesEquivalentToLegacyOptions pins the migration contract of the
// registry refactor: for each case-study workload, spelling the class
// selection through the deprecated Enable*/Disable knobs must stay
// byte-identical — same discriminative PVTs, same explanation, same
// intervention count, same final score — to the Classes map spelling, at
// any worker count.
func TestClassesEquivalentToLegacyOptions(t *testing.T) {
	const rows = 300
	type variant struct {
		legacy  func(o *profile.Options) // deprecated spelling
		classes func(o *profile.Options) // registry spelling
	}
	cases := []struct {
		name string
		load func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options)
		v    variant
	}{
		{
			name: "sentiment",
			load: func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options) {
				s := workload.NewSentimentScenario(rows, 1)
				return s.System, s.Tau, s.Pass, s.Fail, s.Options
			},
			v: variant{
				legacy: func(o *profile.Options) {
					o.EnableDistribution = true
					o.EnableFD = true
				},
				classes: func(o *profile.Options) {
					o.Classes = map[string]bool{"distribution": true, "fd": true}
				},
			},
		},
		{
			name: "income",
			load: func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options) {
				s := workload.NewIncomeScenario(rows, 1)
				return s.System, s.Tau, s.Pass, s.Fail, s.Options
			},
			v: variant{
				legacy: func(o *profile.Options) {
					o.EnableCausal = true
					o.EnableUnique = true
				},
				classes: func(o *profile.Options) {
					o.Classes = map[string]bool{"indep-causal": true, "unique": true}
				},
			},
		},
		{
			name: "cardio",
			load: func() (pipeline.System, float64, *dataset.Dataset, *dataset.Dataset, profile.Options) {
				s := workload.NewCardioScenario(rows, 1)
				return s.System, s.Tau, s.Pass, s.Fail, s.Options
			},
			v: variant{
				legacy: func(o *profile.Options) {
					o.Classes = nil
					o.Disable = map[string]bool{"selectivity": true}
				},
				classes: func(o *profile.Options) {
					o.Classes = map[string]bool{"selectivity": false}
					o.Disable = nil
				},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, tau, pass, fail, base := tc.load()
			for _, workers := range []int{1, 8} {
				legacyOpts := base
				tc.v.legacy(&legacyOpts)
				classOpts := base
				tc.v.classes(&classOpts)
				lsig := searchSignature(t, sys, tau, pass, fail, legacyOpts, workers)
				csig := searchSignature(t, sys, tau, pass, fail, classOpts, workers)
				if lsig != csig {
					t.Errorf("workers=%d: legacy and Classes spellings diverge\nlegacy:\n%s\nclasses:\n%s",
						workers, lsig, csig)
				}
				if workers == 1 {
					// The two worker counts must agree with each other too.
					if w8 := searchSignature(t, sys, tau, pass, fail, classOpts, 8); w8 != csig {
						t.Errorf("worker counts diverge\nworkers=1:\n%s\nworkers=8:\n%s", csig, w8)
					}
				}
			}
		})
	}
}
