package core

import (
	"repro/internal/dataset"
	"repro/internal/transform"
)

// covKey identifies one transformation's coverage on one dataset content:
// the PVT identity plus the candidate's index within it (never the
// Transformation interface value itself, which user-registered classes may
// make non-comparable), and the dataset's content fingerprint.
type covKey struct {
	p  *PVT
	ti int
	fp uint64
}

// coverageCache memoizes the coverage term of the benefit score within one
// search. The greedy loop re-ranks every remaining candidate PVT after each
// accepted intervention, but an intervention only reshapes the current
// dataset when accepted — so across rounds most (transformation, dataset)
// pairs repeat and Coverage, an O(rows) scan, is recomputed for nothing.
// Keying by content fingerprint (cheap under copy-on-write: only touched
// columns re-hash) makes the repeats free while staying exactly as correct
// as recomputation: a changed dataset changes the fingerprint.
//
// A cache is created per search and used from the single search goroutine;
// it is not safe for concurrent use.
type coverageCache struct {
	m            map[covKey]float64
	hits, misses int
}

func newCoverageCache() *coverageCache {
	return &coverageCache{m: make(map[covKey]float64)}
}

// maxCoverage returns the largest coverage among the PVT's candidate
// transformations on d — the coverage term of Benefit — consulting the
// cache per candidate.
func (c *coverageCache) maxCoverage(p *PVT, d *dataset.Dataset) float64 {
	fp := d.Fingerprint()
	cov := 0.0
	for i, t := range p.Transforms {
		k := covKey{p: p, ti: i, fp: fp}
		v, ok := c.m[k]
		if ok {
			c.hits++
		} else {
			c.misses++
			v = t.Coverage(d)
			c.m[k] = v
		}
		if v > cov {
			cov = v
		}
	}
	return cov
}

// maxCoverage is the uncached coverage term of Benefit.
func maxCoverage(ts []transform.Transformation, d *dataset.Dataset) float64 {
	cov := 0.0
	for _, t := range ts {
		if c := t.Coverage(d); c > cov {
			cov = c
		}
	}
	return cov
}
