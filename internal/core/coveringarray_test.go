package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/synth"
)

func TestCoveringArray2Coverage(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 10, 20, 50} {
		rows := core.CoveringArray2(k)
		if len(rows) == 0 {
			t.Fatalf("k=%d: no rows", k)
		}
		for _, row := range rows {
			if len(row) != k {
				t.Fatalf("k=%d: row width %d", k, len(row))
			}
		}
		if k < 2 {
			continue
		}
		// Every column pair must exhibit all four combinations.
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				var seen [2][2]bool
				for _, row := range rows {
					a, b := 0, 0
					if row[i] {
						a = 1
					}
					if row[j] {
						b = 1
					}
					seen[a][b] = true
				}
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !seen[a][b] {
							t.Fatalf("k=%d: pair (%d,%d) missing combination (%d,%d)", k, i, j, a, b)
						}
					}
				}
			}
		}
	}
}

func TestCoveringArray2Logarithmic(t *testing.T) {
	// Strength-2 covering arrays need only O(log k) rows.
	if rows := core.CoveringArray2(100); len(rows) > 20 {
		t.Errorf("k=100 used %d rows, want O(log k)", len(rows))
	}
	if rows := core.CoveringArray2(1000); len(rows) > 24 {
		t.Errorf("k=1000 used %d rows", len(rows))
	}
	if core.CoveringArray2(0) != nil {
		t.Error("k=0 should be nil")
	}
}

// TestDecisionTreeCoveringArrayBootstrap runs the A2-violating AND-gate
// system with NO example datasets: the covering-array bootstrap alone must
// supply enough training signal for the decision tree to find the {X1, X2}
// conjunction.
func TestDecisionTreeCoveringArrayBootstrap(t *testing.T) {
	const k = 6
	sc := synth.New(synth.Options{NumPVTs: k, NumAttrs: 1, Seed: 51})
	profiles := make([]*synth.Profile, k)
	for i, p := range sc.PVTs {
		profiles[i] = p.Profile.(*synth.Profile)
	}
	sys := &pipeline.Func{SystemName: "and-gate", Score: func(d *dataset.Dataset) float64 {
		if profiles[0].Violation(d) == 0 && profiles[1].Violation(d) == 0 {
			return 0
		}
		return 0.9
	}}
	fail := synth.FailingDataset(k)
	e := &core.Explainer{System: sys, Tau: 0.1, Seed: 51, BootstrapCoveringArray: true}
	res, err := e.ExplainWithDecisionTreePVTs(sc.PVTs, nil, fail)
	if err != nil {
		t.Fatalf("bootstrap decision tree failed: %v", err)
	}
	if len(res.Explanation) != 2 || !containsIndex(res.Explanation, 0) || !containsIndex(res.Explanation, 1) {
		t.Errorf("explanation = %s, want {X1, X2}", res.ExplanationString())
	}
}
