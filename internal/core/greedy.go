package core

import (
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/transform"
)

// ExplainGreedy runs DataPrismGRD (Algorithm 1): it discovers the
// discriminative PVTs, prioritizes them by the PVT-attribute graph and the
// benefit score, intervenes one PVT at a time, and post-processes the
// accumulated explanation to a minimal one.
//
// It returns ErrNoExplanation (with the partial Result) when the candidate
// PVTs are exhausted or the intervention budget runs out before the
// malfunction score drops below τ.
func (e *Explainer) ExplainGreedy(pass, fail *dataset.Dataset) (*Result, error) {
	// Lines 1-4: discriminative PVTs.
	return e.ExplainGreedyPVTs(DiscoverPVTs(pass, fail, e.options(), e.eps()), fail)
}

// ExplainGreedyPVTs runs DataPrismGRD on a pre-built discriminative PVT set,
// bypassing profile discovery — used by the synthetic-pipeline experiments
// that construct PVTs directly.
func (e *Explainer) ExplainGreedyPVTs(pvts []*PVT, fail *dataset.Dataset) (*Result, error) {
	start := time.Now()
	oracle := pipeline.NewOracle(e.System)
	rng := e.rng()

	res := &Result{Discriminative: len(pvts)}
	res.InitialScore = oracle.Exempt(fail)
	res.FinalScore = res.InitialScore
	if res.InitialScore <= e.Tau {
		res.Found = true
		res.Transformed = fail.Clone()
		res.Runtime = time.Since(start)
		return res, nil
	}

	// Line 5: PVT-attribute graph. Lines 7-8: initialization.
	g := buildGraph(pvts)
	d := fail
	score := res.InitialScore
	var expl []*PVT
	chosen := make(map[*PVT]transform.Transformation)
	calls := 0

	// Line 9: iterate until the malfunction is acceptable.
	for score > e.Tau && calls < e.maxInterventions() {
		// Line 10: PVTs adjacent to the highest-degree attributes.
		var candidates []int
		if e.DisableGraphPriority {
			candidates = g.Active()
		} else {
			candidates = g.PVTsOfAttrs(g.HighestDegreeAttrs())
		}
		if len(candidates) == 0 {
			break
		}
		// Line 11: highest-benefit PVT among them.
		best, bestB := -1, -1.0
		for _, i := range candidates {
			if b := e.benefit(pvts[i], d, rng); b > bestB {
				bestB, best = b, i
			}
		}
		p := pvts[best]
		// Line 13: mark as explored.
		g.Remove(best)

		// Lines 12, 14-19: intervene and keep the transformation if it
		// reduces the malfunction. Transformations modifying higher-degree
		// attributes are tried first (Observation O1).
		for _, t := range orderTransforms(p, g) {
			out, err := t.Apply(d, rng)
			if err != nil {
				continue
			}
			if calls >= e.maxInterventions() {
				break
			}
			s := oracle.MalfunctionScore(out)
			calls++
			accepted := s < score
			res.Trace = append(res.Trace, Step{
				PVTs:      []string{p.String()},
				Transform: t.Name(),
				Score:     s,
				Accepted:  accepted,
			})
			if accepted {
				d, score = out, s
				chosen[p] = t
				expl = append(expl, p)
				break
			}
		}
	}

	res.Interventions = calls
	if score > e.Tau {
		res.FinalScore = score
		res.Runtime = time.Since(start)
		return res, ErrNoExplanation
	}

	// Line 20: minimality post-pass.
	expl, d = e.makeMinimal(oracle, fail, d, expl, chosen, rng, &res.Trace, &calls)
	res.Interventions = calls
	res.Found = true
	res.Explanation = expl
	res.Transformed = d
	res.FinalScore = oracle.Exempt(d)
	res.Runtime = time.Since(start)
	return res, nil
}
