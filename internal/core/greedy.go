package core

import (
	"context"
	"errors"
	"math"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/transform"
)

// ExplainGreedy runs DataPrismGRD (Algorithm 1): it discovers the
// discriminative PVTs, prioritizes them by the PVT-attribute graph and the
// benefit score, intervenes one PVT at a time, and post-processes the
// accumulated explanation to a minimal one.
//
// It returns ErrNoExplanation (with the partial Result) when the candidate
// PVTs are exhausted or the intervention budget runs out before the
// malfunction score drops below τ.
func (e *Explainer) ExplainGreedy(pass, fail *dataset.Dataset) (*Result, error) {
	return e.ExplainGreedyContext(context.Background(), pass, fail)
}

// ExplainGreedyContext is ExplainGreedy honoring the caller's context:
// cancelling ctx aborts the search promptly with the context's error and a
// partial Result.
func (e *Explainer) ExplainGreedyContext(ctx context.Context, pass, fail *dataset.Dataset) (*Result, error) {
	// Lines 1-4: discriminative PVTs.
	return e.ExplainGreedyPVTsContext(ctx, e.discoverPVTs(pass, fail), fail)
}

// ExplainGreedyPVTs runs DataPrismGRD on a pre-built discriminative PVT set,
// bypassing profile discovery — used by the synthetic-pipeline experiments
// that construct PVTs directly.
func (e *Explainer) ExplainGreedyPVTs(pvts []*PVT, fail *dataset.Dataset) (*Result, error) {
	return e.ExplainGreedyPVTsContext(context.Background(), pvts, fail)
}

// ExplainGreedyPVTsContext is ExplainGreedyPVTs honoring the caller's
// context.
func (e *Explainer) ExplainGreedyPVTsContext(ctx context.Context, pvts []*PVT, fail *dataset.Dataset) (*Result, error) {
	//lint:ignore seededrand wall-clock stamp for Result.Runtime reporting; never feeds scoring
	start := time.Now()
	ev, err := e.newEval()
	if err != nil {
		return nil, err
	}
	rng := e.rng()

	res := &Result{Discriminative: len(pvts)}
	res.InitialScore, err = ev.Baseline(ctx, fail)
	if err != nil {
		finish(res, ev, start)
		return res, err
	}
	res.FinalScore = res.InitialScore
	if res.InitialScore <= e.Tau {
		res.Found = true
		res.Transformed = fail.Clone()
		finish(res, ev, start)
		return res, nil
	}

	// Line 5: PVT-attribute graph. Lines 7-8: initialization.
	g := buildGraph(pvts)
	d := fail
	score := res.InitialScore
	var expl []*PVT
	chosen := make(map[*PVT]transform.Transformation)
	cov := newCoverageCache()

	// Line 9: iterate until the malfunction is acceptable.
	for score > e.Tau && !ev.Exhausted() {
		// Line 10: PVTs adjacent to the highest-degree attributes.
		var candidates []int
		if e.DisableGraphPriority {
			candidates = g.Active()
		} else {
			candidates = g.PVTsOfAttrs(g.HighestDegreeAttrs())
		}
		if len(candidates) == 0 {
			break
		}
		// Line 11: highest-benefit PVT among them.
		best, bestB := -1, -1.0
		for _, i := range candidates {
			if b := e.benefit(pvts[i], d, rng, cov); b > bestB {
				bestB, best = b, i
			}
		}
		p := pvts[best]
		// Line 13: mark as explored.
		g.Remove(best)

		// Lines 12, 14-19: intervene and keep the first transformation that
		// reduces the malfunction. Transformations modifying higher-degree
		// attributes are tried first (Observation O1). The candidate outputs
		// are composed serially (deterministic rng order) and scored as one
		// engine batch; acceptance goes to the first improving candidate in
		// priority order, exactly as the sequential scan would choose.
		type probe struct {
			t   transform.Transformation
			out *dataset.Dataset
		}
		var probes []probe
		for _, t := range orderTransforms(p, g) {
			out, err := t.Apply(d, rng)
			if err != nil {
				continue
			}
			probes = append(probes, probe{t: t, out: out})
		}
		if len(probes) == 0 {
			continue
		}
		cands := make([]*dataset.Dataset, len(probes))
		for i := range probes {
			cands[i] = probes[i].out
		}
		scores, evalErr := ev.EvalBatch(ctx, cands)
		pick := -1
		for i, s := range scores {
			if !math.IsNaN(s) && s < score {
				pick = i
				break
			}
		}
		for i, s := range scores {
			if math.IsNaN(s) {
				continue
			}
			res.Trace = append(res.Trace, Step{
				PVTs:      []string{p.String()},
				Transform: probes[i].t.Name(),
				Score:     s,
				Accepted:  i == pick,
			})
		}
		if pick >= 0 {
			d, score = probes[pick].out, scores[pick]
			chosen[p] = probes[pick].t
			expl = append(expl, p)
		}
		if evalErr != nil {
			if errors.Is(evalErr, engine.ErrBudgetExhausted) {
				break
			}
			res.FinalScore = score
			finish(res, ev, start)
			return res, evalErr
		}
	}

	if score > e.Tau {
		res.FinalScore = score
		finish(res, ev, start)
		return res, ErrNoExplanation
	}

	// Line 20: minimality post-pass.
	expl, d, mmErr := e.makeMinimal(ctx, ev, fail, d, expl, chosen, rng, &res.Trace)
	if mmErr != nil {
		res.FinalScore = score
		finish(res, ev, start)
		return res, mmErr
	}
	res.Found = true
	res.Explanation = expl
	res.Transformed = d
	// The final dataset's score was evaluated (and memoized) during the
	// search, so this is a cache hit; fall back to the last accepted score
	// if the measurement somehow fails.
	if fs, fsErr := ev.Baseline(ctx, d); fsErr == nil {
		res.FinalScore = fs
	} else {
		res.FinalScore = score
	}
	finish(res, ev, start)
	return res, nil
}
