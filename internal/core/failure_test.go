package core_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/transform"
)

// brokenTransform always fails — simulating a transformation whose
// prerequisites the current dataset cannot satisfy.
type brokenTransform struct {
	p profile.Profile
}

func (t *brokenTransform) Name() string                      { return "broken" }
func (t *brokenTransform) Target() profile.Profile           { return t.p }
func (t *brokenTransform) Modifies() []string                { return t.p.Attributes() }
func (t *brokenTransform) Coverage(*dataset.Dataset) float64 { return 0.9 }
func (t *brokenTransform) Apply(*dataset.Dataset, *rand.Rand) (*dataset.Dataset, error) {
	return nil, fmt.Errorf("broken transform")
}

func TestGreedySurvivesNaNScores(t *testing.T) {
	// A system that intermittently returns NaN must not be treated as an
	// improvement (NaN < x is false), and the search must terminate.
	sc := synth.New(synth.Options{NumPVTs: 10, NumAttrs: 2, Conjunction: 1, Seed: 31})
	calls := 0
	flaky := &pipeline.Func{SystemName: "flaky", Score: func(d *dataset.Dataset) float64 {
		calls++
		if calls%2 == 0 {
			return math.NaN()
		}
		return sc.System.MalfunctionScore(d)
	}}
	e := &core.Explainer{System: flaky, Tau: 0.05, Seed: 31, MaxInterventions: 100}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil && !errors.Is(err, core.ErrNoExplanation) {
		t.Fatalf("unexpected error: %v", err)
	}
	if err == nil && res.FinalScore > e.Tau && !math.IsNaN(res.FinalScore) {
		t.Errorf("claimed success with score %g", res.FinalScore)
	}
}

func TestGreedySkipsBrokenTransforms(t *testing.T) {
	// A PVT whose only transform errors is skipped; a PVT with a broken
	// first transform falls through to its working second transform.
	sc := synth.New(synth.Options{NumPVTs: 6, NumAttrs: 2, Conjunction: 1, Seed: 32})
	cause := sc.GroundTruth[0][0]
	for i, p := range sc.PVTs {
		if i == cause {
			// Broken transform first; the real one second.
			p.Transforms = append([]transform.Transformation{&brokenTransform{p: p.Profile}}, p.Transforms...)
		} else {
			// Everything else is entirely broken.
			p.Transforms = []transform.Transformation{&brokenTransform{p: p.Profile}}
		}
	}
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 32}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("greedy failed: %v", err)
	}
	if !containsIndex(res.Explanation, cause) {
		t.Errorf("explanation = %s", res.ExplanationString())
	}
}

func TestGroupTestSurvivesBrokenTransforms(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 12, NumAttrs: 3, Conjunction: 1, Seed: 33})
	cause := sc.GroundTruth[0][0]
	for i, p := range sc.PVTs {
		if i != cause {
			p.Transforms = []transform.Transformation{&brokenTransform{p: p.Profile}}
		}
	}
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 33}
	res, err := e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("group test failed: %v", err)
	}
	if !containsIndex(res.Explanation, cause) {
		t.Errorf("explanation = %s", res.ExplanationString())
	}
}

func TestExplainGreedyEmptyCandidates(t *testing.T) {
	sys := &pipeline.Func{SystemName: "s", Score: func(*dataset.Dataset) float64 { return 0.9 }}
	e := &core.Explainer{System: sys, Tau: 0.1, Seed: 34}
	res, err := e.ExplainGreedyPVTs(nil, synth.FailingDataset(1))
	if !errors.Is(err, core.ErrNoExplanation) {
		t.Errorf("err = %v", err)
	}
	if res.Interventions != 0 {
		t.Errorf("interventions = %d", res.Interventions)
	}
}

// TestExtendedProfilesEndToEnd drives the full discovery→intervention loop
// through the extension profile classes: the failing dataset violates an FD
// and carries a distribution drift, and the system's malfunction is defined
// directly over those properties.
func TestExtendedProfilesEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	n := 600
	zip := make([]string, n)
	city := make([]string, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			zip[i], city[i] = "01004", "amherst"
		} else {
			zip[i], city[i] = "94107", "sf"
		}
		vals[i] = 50 + 5*rng.NormFloat64()
	}
	pass := dataset.New().
		MustAddCategorical("zip", append([]string(nil), zip...)).
		MustAddCategorical("city", append([]string(nil), city...)).
		MustAddNumeric("v", append([]float64(nil), vals...))

	fail := pass.Clone()
	// Break the FD on 20% of rows and shift the distribution.
	for i := 0; i < n; i += 5 {
		fail.SetStr("city", i, "WRONG")
	}
	fc := fail.MutableColumn("v")
	for k := 0; k < fc.NumChunks(); k++ {
		w := fc.MutableChunk(k)
		for i := range w.Nums {
			w.Nums[i] = w.Nums[i]*2 + 30
		}
	}

	fd := &profile.FuncDep{Det: "zip", Dep: "city"}
	dist := profile.DiscoverDistribution(pass, "v")
	sys := &pipeline.Func{SystemName: "ext", Score: func(d *dataset.Dataset) float64 {
		s := fd.G3(d) + dist.Deviation(d)
		if s > 1 {
			return 1
		}
		return s
	}}
	if sys.MalfunctionScore(pass) > 0.05 {
		t.Fatal("setup: pass should score low")
	}
	if sys.MalfunctionScore(fail) < 0.3 {
		t.Fatal("setup: fail should score high")
	}

	opts := profile.DefaultOptions()
	opts.Classes = map[string]bool{"fd": true, "distribution": true}
	e := &core.Explainer{System: sys, Tau: 0.05, Options: &opts, Seed: 35}
	res, err := e.ExplainGreedy(pass, fail)
	if err != nil {
		t.Fatalf("greedy failed: %v", err)
	}
	var hasFD, hasDist bool
	for _, p := range res.Explanation {
		switch p.Profile.Type() {
		case "fd":
			hasFD = true
		case "distribution", "domain":
			hasDist = true
		}
	}
	if !hasFD || !hasDist {
		t.Errorf("explanation %s should cover both injected issues", res.ExplanationString())
	}
	if res.FinalScore > e.Tau {
		t.Errorf("final score = %g", res.FinalScore)
	}
}
