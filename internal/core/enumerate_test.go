package core_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/synth"
)

func TestEnumerateExplanationsDisjunction(t *testing.T) {
	// Three alternative singleton causes → three distinct minimal
	// explanations should be enumerable.
	sc := synth.New(synth.Options{NumPVTs: 18, NumAttrs: 6, Disjunction: 3, Seed: 41})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 41}
	expls, err := e.EnumerateExplanationsPVTs(sc.PVTs, sc.Fail, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) != 3 {
		t.Fatalf("found %d explanations, want 3 (the three disjuncts)", len(expls))
	}
	truth := map[int]bool{}
	for _, disj := range sc.GroundTruth {
		truth[disj[0]] = true
	}
	seen := map[int]bool{}
	for _, expl := range expls {
		if len(expl) != 1 {
			t.Errorf("explanation %v not singleton", expl)
			continue
		}
		idx := expl[0].Profile.(*synth.Profile).Index
		if !truth[idx] {
			t.Errorf("X%d is not a ground-truth cause", idx+1)
		}
		if seen[idx] {
			t.Errorf("duplicate explanation X%d", idx+1)
		}
		seen[idx] = true
	}
}

func TestEnumerateExplanationsSingle(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 12, NumAttrs: 4, Conjunction: 1, Seed: 42})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 42}
	expls, err := e.EnumerateExplanationsPVTs(sc.PVTs, sc.Fail, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(expls) != 1 {
		t.Errorf("found %d explanations, want exactly 1", len(expls))
	}
}

func TestEnumerateExplanationsNone(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 6, NumAttrs: 2, Seed: 43})
	stubborn := &pipeline.Func{SystemName: "s", Score: func(*dataset.Dataset) float64 { return 0.9 }}
	e := &core.Explainer{System: stubborn, Tau: 0.1, Seed: 43}
	if _, err := e.EnumerateExplanationsPVTs(sc.PVTs, sc.Fail, 3); !errors.Is(err, core.ErrNoExplanation) {
		t.Errorf("err = %v", err)
	}
	if _, err := e.EnumerateExplanationsPVTs(nil, sc.Fail, 3); !errors.Is(err, core.ErrNoExplanation) {
		t.Errorf("empty pool err = %v", err)
	}
}

func TestVerifyExplanation(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 4, Conjunction: 2, Seed: 44})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 44}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	ok, calls := core.VerifyExplanation(sc.System, e.Tau, sc.Fail, res.Explanation, 44, true)
	if !ok {
		t.Error("reported explanation failed independent verification")
	}
	if calls < 1 {
		t.Error("verification should spend oracle calls")
	}
	// A padded (non-minimal) explanation fails the minimality check.
	var extra *core.PVT
	for _, p := range sc.PVTs {
		inExpl := false
		for _, q := range res.Explanation {
			if p == q {
				inExpl = true
			}
		}
		if !inExpl {
			extra = p
			break
		}
	}
	padded := append(append([]*core.PVT(nil), res.Explanation...), extra)
	if ok, _ := core.VerifyExplanation(sc.System, e.Tau, sc.Fail, padded, 44, true); ok {
		t.Error("padded explanation should fail minimality verification")
	}
	// But it passes without the minimality check (it does fix the system).
	if ok, _ := core.VerifyExplanation(sc.System, e.Tau, sc.Fail, padded, 44, false); !ok {
		t.Error("padded explanation should still repair the system")
	}
	// An unrelated singleton fails outright.
	if ok, _ := core.VerifyExplanation(sc.System, e.Tau, sc.Fail, []*core.PVT{extra}, 44, false); ok {
		t.Error("non-cause explanation should fail verification")
	}
}
