package core

import (
	"errors"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/transform"
)

// BenefitMode selects how the greedy algorithm scores candidate PVTs; the
// non-default modes exist for the ablation study.
type BenefitMode int

const (
	// BenefitFull is violation × coverage (the paper's benefit score).
	BenefitFull BenefitMode = iota
	// BenefitViolationOnly scores by violation alone (ablation).
	BenefitViolationOnly
	// BenefitCoverageOnly scores by coverage alone (ablation).
	BenefitCoverageOnly
	// BenefitRandom scores uniformly at random (ablation).
	BenefitRandom
)

// Explainer configures DataPrism's root-cause search. The zero value plus a
// System and Tau is usable; defaults mirror the paper's setup.
type Explainer struct {
	// System is the black box under debugging (required).
	System pipeline.System
	// Tau is the allowable malfunction threshold (Definition 10).
	Tau float64
	// Options configures profile discovery; the zero value means
	// profile.DefaultOptions.
	Options *profile.Options
	// Eps is the minimum failing-side violation for a profile to count as
	// discriminative (default 1e-9).
	Eps float64
	// Seed drives the deterministic RNG behind sampling transformations and
	// bisection initialization.
	Seed int64
	// MaxInterventions caps oracle calls as a safety valve (default 10000).
	MaxInterventions int
	// Benefit selects the greedy scoring mode (ablation knob).
	Benefit BenefitMode
	// DisableGraphPriority skips the high-degree-attribute filter of
	// Algorithm 1 line 10 (ablation knob).
	DisableGraphPriority bool
	// RandomBisection makes the group-testing variant partition PVTs
	// uniformly at random instead of by min-bisection — this is exactly the
	// paper's GrpTest baseline.
	RandomBisection bool
	// BootstrapCoveringArray makes the decision-tree method (Appendix B)
	// seed its training set by evaluating a strength-2 covering array of
	// repair configurations, so it works without example datasets.
	BootstrapCoveringArray bool
	// SpeculativeParallel makes the group-testing search evaluate both
	// halves of each bisection concurrently. The X2 evaluation is
	// speculative — Algorithm 3 skips it when X1 already suffices — so the
	// intervention count can exceed the sequential run's, in exchange for
	// roughly halved wall-clock time on systems that are expensive to
	// evaluate. Requires the System to be safe for concurrent use.
	SpeculativeParallel bool
}

// Step records one intervention for the Result trace.
type Step struct {
	// PVTs lists the profiles intervened on (one for greedy, a group for GT).
	PVTs []string
	// Transform names the applied transformation ("" for group steps).
	Transform string
	// Score is the malfunction score observed after the intervention.
	Score float64
	// Accepted reports whether the intervention was kept.
	Accepted bool
}

// Result is the outcome of a root-cause search.
type Result struct {
	// Found reports whether an explanation bringing the score below Tau
	// was identified.
	Found bool
	// Explanation is the minimal PVT set (Definition 11) when Found.
	Explanation []*PVT
	// Transformed is the repaired dataset when Found.
	Transformed *dataset.Dataset
	// Interventions is the number of oracle calls on transformed datasets.
	Interventions int
	// Discriminative is the number of discriminative PVT candidates.
	Discriminative int
	// InitialScore and FinalScore bracket the search.
	InitialScore, FinalScore float64
	// Trace logs each intervention in order.
	Trace []Step
	// Runtime is the wall-clock duration of the search.
	Runtime time.Duration
}

// ExplanationString renders the explanation in the paper's set notation.
func (r *Result) ExplanationString() string { return pvtSetString(r.Explanation) }

// ErrNoExplanation is returned when no combination of discriminative PVT
// transformations brings the malfunction score below τ — e.g. when
// assumption A1 (the ground truth is captured by some discriminative PVT)
// or A3 (for group testing) does not hold.
var ErrNoExplanation = errors.New("core: no explanation found among discriminative PVTs")

// options returns the discovery options with defaults applied.
func (e *Explainer) options() profile.Options {
	if e.Options != nil {
		return *e.Options
	}
	return profile.DefaultOptions()
}

func (e *Explainer) eps() float64 {
	if e.Eps == 0 {
		return 1e-9
	}
	return e.Eps
}

func (e *Explainer) maxInterventions() int {
	if e.MaxInterventions == 0 {
		return 10000
	}
	return e.MaxInterventions
}

func (e *Explainer) rng() *rand.Rand {
	return rand.New(rand.NewSource(e.Seed + 0x9e3779b9))
}

// benefit scores a PVT according to the configured mode.
func (e *Explainer) benefit(p *PVT, d *dataset.Dataset, rng *rand.Rand) float64 {
	switch e.Benefit {
	case BenefitViolationOnly:
		return p.Profile.Violation(d)
	case BenefitCoverageOnly:
		cov := 0.0
		for _, t := range p.Transforms {
			if c := t.Coverage(d); c > cov {
				cov = c
			}
		}
		return cov
	case BenefitRandom:
		return rng.Float64()
	default:
		return Benefit(p, d)
	}
}

// makeMinimal implements Algorithm 1 line 20 / Algorithm 2 line 7: starting
// from an explanation X*, repeatedly try dropping one PVT; if the remaining
// composition still brings the failing dataset below τ, the PVT was
// unnecessary. Every check costs one oracle call. chosen pins the specific
// transformation each PVT used during the search so minimality is checked
// against the same fix that was verified.
func (e *Explainer) makeMinimal(oracle *pipeline.Oracle, fail, finalD *dataset.Dataset, expl []*PVT,
	chosen map[*PVT]transform.Transformation, rng *rand.Rand, trace *[]Step, calls *int) ([]*PVT, *dataset.Dataset) {

	current := append([]*PVT(nil), expl...)
	best := finalD
	for i := 0; i < len(current) && len(current) > 1; {
		reduced := append(append([]*PVT(nil), current[:i]...), current[i+1:]...)
		candidate := composeAll(fail, reduced, chosen, rng)
		if *calls >= e.maxInterventions() {
			break
		}
		score := oracle.MalfunctionScore(candidate)
		*calls++
		drop := score <= e.Tau
		*trace = append(*trace, Step{
			PVTs:      []string{current[i].String()},
			Transform: "make-minimal drop check",
			Score:     score,
			Accepted:  drop,
		})
		if drop {
			current = reduced
			best = candidate
			// restart scan: minimality is w.r.t. the reduced set
			i = 0
			continue
		}
		i++
	}
	return current, best
}
