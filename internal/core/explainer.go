package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/transform"
)

// BenefitMode selects how the greedy algorithm scores candidate PVTs; the
// non-default modes exist for the ablation study.
type BenefitMode int

const (
	// BenefitFull is violation × coverage (the paper's benefit score).
	BenefitFull BenefitMode = iota
	// BenefitViolationOnly scores by violation alone (ablation).
	BenefitViolationOnly
	// BenefitCoverageOnly scores by coverage alone (ablation).
	BenefitCoverageOnly
	// BenefitRandom scores uniformly at random (ablation).
	BenefitRandom
)

// Explainer configures DataPrism's root-cause search. The zero value plus a
// System and Tau is usable; defaults mirror the paper's setup.
//
// All searches evaluate through the intervention engine
// (internal/engine): a context-aware oracle with a bounded worker pool and
// a memoized score cache, under one intervention budget. Same seed means
// same explanation and same counted interventions regardless of Workers.
type Explainer struct {
	// System is the black box under debugging (required unless
	// ContextSystem is set).
	System pipeline.System
	// ContextSystem, when set, takes precedence over System and receives
	// the search's context on every evaluation — cancelling the context
	// can then interrupt even an in-flight external process.
	ContextSystem pipeline.ContextSystem
	// FallibleSystem, when set, takes precedence over both and exposes the
	// full error-aware contract: measurement failures (timeouts, fork
	// errors, cancellations) are distinguished from malfunction scores,
	// never cached, and refunded from the intervention budget. Wrap a
	// flaky scorer in pipeline.Retry and pipeline.Breaker and set it here.
	FallibleSystem pipeline.FallibleSystem
	// Tau is the allowable malfunction threshold (Definition 10).
	Tau float64
	// Options configures profile discovery; the zero value means
	// profile.DefaultOptions.
	Options *profile.Options
	// Eps is the minimum failing-side violation for a profile to count as
	// discriminative (default 1e-9).
	Eps float64
	// Seed drives the deterministic RNG behind sampling transformations and
	// bisection initialization.
	Seed int64
	// MaxInterventions caps oracle calls as a safety valve (default 10000).
	MaxInterventions int
	// Workers bounds concurrent oracle evaluations (default GOMAXPROCS;
	// 1 forces sequential evaluation). Parallelism never changes the
	// search outcome — only wall-clock time — so this replaces the old
	// SpeculativeParallel flag.
	Workers int
	// Store, when set, backs score memoization with a persistent archive
	// (internal/scorestore): scores survive the process, so a repeated or
	// killed-and-resumed search re-evaluates only what the previous run
	// never scored. Served scores consume no intervention budget and are
	// counted in Stats.StoreHits.
	Store engine.ScoreStore
	// Benefit selects the greedy scoring mode (ablation knob).
	Benefit BenefitMode
	// DisableGraphPriority skips the high-degree-attribute filter of
	// Algorithm 1 line 10 (ablation knob).
	DisableGraphPriority bool
	// RandomBisection makes the group-testing variant partition PVTs
	// uniformly at random instead of by min-bisection — this is exactly the
	// paper's GrpTest baseline.
	RandomBisection bool
	// BootstrapCoveringArray makes the decision-tree method (Appendix B)
	// seed its training set by evaluating a strength-2 covering array of
	// repair configurations, so it works without example datasets.
	BootstrapCoveringArray bool
	// BaselineProfiles, when non-empty, replaces profile discovery on the
	// passing dataset: the pinned profiles — typically decoded from a
	// versioned baseline artifact (internal/artifact) — are the candidate
	// set, and discrimination is checked directly against the failing
	// dataset. The explanation then cites profiles exactly as the baseline
	// recorded them, fit bounds included, instead of a fresh re-discovery
	// that may have drifted with the passing data.
	BaselineProfiles []profile.Profile
	// BaselineName labels the baseline artifact (e.g. its file path or
	// fingerprint) in results and reports. Only meaningful alongside
	// BaselineProfiles.
	BaselineName string

	// eval, when set, is a pre-built evaluation substrate shared across
	// searches (EnumerateExplanations uses this so repeated greedy runs
	// share one memo cache and one budget).
	eval *engine.Eval
}

// Step records one intervention for the Result trace.
type Step struct {
	// PVTs lists the profiles intervened on (one for greedy, a group for GT).
	PVTs []string
	// Transform names the applied transformation ("" for group steps).
	Transform string
	// Score is the malfunction score observed after the intervention.
	Score float64
	// Accepted reports whether the intervention was kept.
	Accepted bool
}

// Result is the outcome of a root-cause search.
type Result struct {
	// Found reports whether an explanation bringing the score below Tau
	// was identified.
	Found bool
	// Explanation is the minimal PVT set (Definition 11) when Found.
	Explanation []*PVT
	// Transformed is the repaired dataset when Found.
	Transformed *dataset.Dataset
	// Interventions is the number of oracle calls on transformed datasets.
	// Memoized re-evaluations are free (see Stats.CacheHits).
	Interventions int
	// Discriminative is the number of discriminative PVT candidates.
	Discriminative int
	// InitialScore and FinalScore bracket the search.
	InitialScore, FinalScore float64
	// Trace logs each intervention in order.
	Trace []Step
	// Runtime is the wall-clock duration of the search.
	Runtime time.Duration
	// Stats is the engine's full counter snapshot: interventions, cache
	// hits/misses, parallel batches, and the oracle latency histogram.
	Stats engine.Stats
}

// ExplanationString renders the explanation in the paper's set notation.
func (r *Result) ExplanationString() string { return pvtSetString(r.Explanation) }

// ErrNoExplanation is returned when no combination of discriminative PVT
// transformations brings the malfunction score below τ — e.g. when
// assumption A1 (the ground truth is captured by some discriminative PVT)
// or A3 (for group testing) does not hold.
var ErrNoExplanation = errors.New("core: no explanation found among discriminative PVTs")

// options returns the discovery options with defaults applied; the
// explainer's worker budget carries over to parallel profile discovery
// unless the options pin their own.
func (e *Explainer) options() profile.Options {
	o := profile.DefaultOptions()
	if e.Options != nil {
		o = *e.Options
	}
	if o.Workers == 0 {
		o.Workers = e.Workers
	}
	return o
}

// discoverPVTs resolves the discriminative candidate set for one search:
// pinned baseline profiles when configured (filtered down to what fail
// violates), otherwise fresh discovery on the passing dataset.
func (e *Explainer) discoverPVTs(pass, fail *dataset.Dataset) []*PVT {
	if len(e.BaselineProfiles) > 0 {
		return BuildPVTs(profile.DiscriminativeFrom(e.BaselineProfiles, fail, e.eps()))
	}
	return DiscoverPVTs(pass, fail, e.options(), e.eps())
}

func (e *Explainer) eps() float64 {
	if e.Eps == 0 {
		return 1e-9
	}
	return e.Eps
}

func (e *Explainer) maxInterventions() int {
	if e.MaxInterventions == 0 {
		return 10000
	}
	return e.MaxInterventions
}

func (e *Explainer) rng() *rand.Rand {
	return rand.New(rand.NewSource(e.Seed + 0x9e3779b9))
}

// contextSystem resolves the configured system to its context-aware form.
func (e *Explainer) contextSystem() pipeline.ContextSystem {
	if e.FallibleSystem != nil {
		return pipeline.FallibleAsContext(e.FallibleSystem)
	}
	if e.ContextSystem != nil {
		return e.ContextSystem
	}
	if e.System != nil {
		return pipeline.AsContext(e.System)
	}
	return nil
}

// newEval builds (or reuses) the evaluation substrate for one search.
func (e *Explainer) newEval() (*engine.Eval, error) {
	if e.eval != nil {
		return e.eval, nil
	}
	cfg := engine.Config{
		Workers:          e.Workers,
		MaxInterventions: e.maxInterventions(),
		Store:            e.Store,
	}
	if e.FallibleSystem != nil {
		return engine.NewFallible(e.FallibleSystem, cfg), nil
	}
	cs := e.contextSystem()
	if cs == nil {
		return nil, errors.New("core: Explainer requires a System, ContextSystem, or FallibleSystem")
	}
	return engine.New(cs, cfg), nil
}

// finish stamps the engine's counters and the wall clock onto the result.
func finish(res *Result, ev *engine.Eval, start time.Time) {
	res.Stats = ev.Stats()
	res.Interventions = res.Stats.Interventions
	res.Runtime = time.Since(start)
}

// benefit scores a PVT according to the configured mode. cov, when non-nil,
// memoizes the coverage term for the duration of one search.
func (e *Explainer) benefit(p *PVT, d *dataset.Dataset, rng *rand.Rand, cov *coverageCache) float64 {
	switch e.Benefit {
	case BenefitViolationOnly:
		return p.Profile.Violation(d)
	case BenefitCoverageOnly:
		if cov != nil {
			return cov.maxCoverage(p, d)
		}
		return maxCoverage(p.Transforms, d)
	case BenefitRandom:
		return rng.Float64()
	default:
		return benefitCached(p, d, cov)
	}
}

// makeMinimal implements Algorithm 1 line 20 / Algorithm 2 line 7: starting
// from an explanation X*, repeatedly try dropping one PVT; if the remaining
// composition still brings the failing dataset below τ, the PVT was
// unnecessary. Every check costs one oracle call unless memoized. chosen
// pins the specific transformation each PVT used during the search so
// minimality is checked against the same fix that was verified.
//
// The drop checks of one round are independent, so they are composed
// serially (deterministic rng order) and evaluated as one engine batch; the
// first droppable PVT in scan order is dropped and the scan restarts, which
// preserves the sequential algorithm's choice of explanation. The budget is
// checked before any composition work, so an exhausted budget wastes no
// dataset clones.
func (e *Explainer) makeMinimal(ctx context.Context, ev *engine.Eval, fail, finalD *dataset.Dataset, expl []*PVT,
	chosen map[*PVT]transform.Transformation, rng *rand.Rand, trace *[]Step) ([]*PVT, *dataset.Dataset, error) {

	current := append([]*PVT(nil), expl...)
	best := finalD
	for len(current) > 1 {
		n := len(current)
		if r := ev.Remaining(); n > r {
			n = r
		}
		if n == 0 {
			break
		}
		cands := make([]*dataset.Dataset, n)
		for i := 0; i < n; i++ {
			reduced := append(append([]*PVT(nil), current[:i]...), current[i+1:]...)
			cands[i] = composeAll(fail, reduced, chosen, rng)
		}
		scores, err := ev.EvalBatch(ctx, cands)
		drop := -1
		for i, s := range scores {
			if !math.IsNaN(s) && s <= e.Tau {
				drop = i
				break
			}
		}
		for i, s := range scores {
			if math.IsNaN(s) {
				continue
			}
			*trace = append(*trace, Step{
				PVTs:      []string{current[i].String()},
				Transform: "make-minimal drop check",
				Score:     s,
				Accepted:  i == drop,
			})
		}
		if err != nil && !errors.Is(err, engine.ErrBudgetExhausted) {
			return current, best, err
		}
		if drop < 0 {
			break // minimal (or budget ran dry mid-round with no drop found)
		}
		best = cands[drop]
		current = append(append([]*PVT(nil), current[:drop]...), current[drop+1:]...)
		if err != nil {
			break // the drop was applied, but no budget remains for another round
		}
	}
	return current, best, nil
}
