package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/profile"
)

// benchData builds a passing/failing dataset pair large enough that the
// coverage term of Benefit (an O(rows) scan per transformation) dominates,
// and discovers the discriminative PVTs between them.
func benchData(rows int) (pass, fail *dataset.Dataset, pvts []*PVT) {
	nums := make([]float64, rows)
	cats := make([]string, rows)
	for i := 0; i < rows; i++ {
		nums[i] = math.Sin(float64(i)) * 10
		cats[i] = string(rune('a' + i%4))
	}
	pass = dataset.New()
	for _, name := range []string{"n1", "n2", "n3", "n4"} {
		pass.MustAddNumeric(name, nums)
	}
	pass.MustAddCategorical("c1", cats).MustAddCategorical("c2", cats)

	fail = pass.Clone()
	for i := 0; i < rows; i += 3 {
		fail.SetNum("n1", i, 500+float64(i)) // out of domain + outlier
		fail.SetStr("c1", i, "zz")           // out of categorical domain
	}
	for i := 0; i < rows; i += 5 {
		fail.SetNull("n2", i) // missing
	}

	opts := profile.DefaultOptions()
	opts.Workers = 1
	pvts = DiscoverPVTs(pass, fail, opts, 1e-9)
	return pass, fail, pvts
}

// TestBenefitCachedMatchesUncached pins the cache to pure memoization: same
// scores as direct computation, served again after a hit, and recomputed
// (not served stale) once the dataset's content changes.
func TestBenefitCachedMatchesUncached(t *testing.T) {
	_, fail, pvts := benchData(400)
	if len(pvts) == 0 {
		t.Fatal("no discriminative PVTs in benchmark fixture")
	}
	cov := newCoverageCache()
	for _, p := range pvts {
		want := Benefit(p, fail)
		if got := benefitCached(p, fail, cov); got != want {
			t.Errorf("%s: cached = %g, uncached = %g", p, got, want)
		}
	}
	if cov.hits != 0 {
		t.Errorf("first pass had %d hits, want 0", cov.hits)
	}
	misses := cov.misses
	for _, p := range pvts {
		benefitCached(p, fail, cov)
	}
	if cov.misses != misses {
		t.Errorf("second pass recomputed %d coverages, want all hits", cov.misses-misses)
	}

	// Mutating the dataset must change the fingerprint and bypass the
	// stale entries.
	mutated := fail.Clone()
	mutated.SetNum("n3", 0, 1e6)
	for _, p := range pvts {
		want := Benefit(p, mutated)
		if got := benefitCached(p, mutated, cov); got != want {
			t.Errorf("%s after mutation: cached = %g, uncached = %g", p, got, want)
		}
	}
}

// The benchmarks replay the greedy loop's access pattern: every remaining
// candidate PVT is re-ranked against the same current dataset once per
// round. rounds×|PVTs| scores touch only |PVTs| distinct (transformation,
// fingerprint) pairs, which is exactly what the cache collapses.
func benchmarkBenefit(b *testing.B, cached bool) {
	_, fail, pvts := benchData(4000)
	if len(pvts) == 0 {
		b.Fatal("no discriminative PVTs in benchmark fixture")
	}
	const rounds = 16
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var cov *coverageCache
		if cached {
			cov = newCoverageCache()
		}
		sink := 0.0
		for r := 0; r < rounds; r++ {
			for _, p := range pvts {
				sink += benefitCached(p, fail, cov)
			}
		}
		_ = sink
	}
}

func BenchmarkBenefitUncached(b *testing.B) { benchmarkBenefit(b, false) }
func BenchmarkBenefitCached(b *testing.B)   { benchmarkBenefit(b, true) }
