package core

// CoveringArray2 builds a binary covering array of strength two over k
// columns: a set of rows (configurations) such that every pair of columns
// exhibits all four value combinations (00, 01, 10, 11). The paper's
// Appendix B cites combinatorial-design-based initialization [19] for the
// decision-tree approach; this is the classic balanced-codeword
// construction with O(log k) rows.
//
// Construction: each column is assigned a distinct binary codeword of
// length n with first bit 0 and weight ⌊n/2⌋. Any two such codewords are
// non-equal, non-complementary (both start with 0 → 00 covered), share a
// one-position by pigeonhole (11 covered), and each has a one the other
// lacks by equal weight (01 and 10 covered). n grows until
// C(n−1, ⌊n/2⌋) ≥ k.
func CoveringArray2(k int) [][]bool {
	if k <= 0 {
		return nil
	}
	if k == 1 {
		return [][]bool{{false}, {true}}
	}
	// Find the smallest even n with C(n-1, n/2) ≥ k. n must be even so the
	// pigeonhole bound 2·(n/2) − (n−1) = 1 guarantees a shared one-position.
	n := 4
	for binom(n-1, n/2) < k {
		n += 2
	}
	// Enumerate the first k codewords: length n, first bit 0, weight n/2.
	codewords := make([][]bool, 0, k)
	current := make([]bool, n)
	var build func(pos, remaining int)
	build = func(pos, remaining int) {
		if len(codewords) >= k {
			return
		}
		if remaining == 0 {
			cw := make([]bool, n)
			copy(cw, current)
			codewords = append(codewords, cw)
			return
		}
		if n-pos < remaining {
			return
		}
		// Place a one at pos, or skip it.
		current[pos] = true
		build(pos+1, remaining-1)
		current[pos] = false
		build(pos+1, remaining)
	}
	// First bit fixed to 0: start placement at position 1.
	build(1, n/2)

	// Transpose: row r of the covering array reads bit r of every codeword.
	rows := make([][]bool, n)
	for r := 0; r < n; r++ {
		rows[r] = make([]bool, k)
		for c := 0; c < k; c++ {
			rows[r][c] = codewords[c][r]
		}
	}
	return rows
}

// binom computes C(n, k) with overflow saturation.
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := 1
	for i := 0; i < k; i++ {
		result = result * (n - i) / (i + 1)
		if result < 0 || result > 1<<40 {
			return 1 << 40 // saturate: plenty for any realistic k
		}
	}
	return result
}
