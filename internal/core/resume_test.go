package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/scorestore"
	"repro/internal/synth"
)

// openStore opens a score store rooted in dir for the scenario's oracle.
func openStore(t *testing.T, dir string, sys pipeline.System) *scorestore.Store {
	t.Helper()
	s, err := scorestore.Open(dir, sys.Name(), scorestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestResumeWarmStoreZeroOracleCalls is the acceptance bar of the persistent
// score store: a search repeated against the store of a completed run must
// perform zero raw oracle evaluations and still produce the identical
// explanation — every score is served from disk.
func TestResumeWarmStoreZeroOracleCalls(t *testing.T) {
	seed := int64(3)
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})
	dir := t.TempDir()

	cold := pipeline.NewOracle(sc.System)
	store := openStore(t, dir, sc.System)
	e1 := &core.Explainer{System: cold, Tau: 0.05, Seed: seed, Workers: 1, Store: store}
	want, err := e1.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if cold.Calls() == 0 {
		t.Fatal("cold run made no oracle calls")
	}

	// Fresh process image: new oracle counter, reopened store.
	warm := pipeline.NewOracle(sc.System)
	store2 := openStore(t, dir, sc.System)
	defer store2.Close()
	e2 := &core.Explainer{System: warm, Tau: 0.05, Seed: seed, Workers: 1, Store: store2}
	got, err := e2.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Calls() != 0 {
		t.Fatalf("warm re-run made %d raw oracle calls, want 0", warm.Calls())
	}
	if got.Interventions != 0 {
		t.Fatalf("warm re-run charged %d interventions, want 0", got.Interventions)
	}
	if got.Stats.StoreHits == 0 {
		t.Fatal("warm re-run recorded no store hits")
	}
	if got.ExplanationString() != want.ExplanationString() ||
		got.FinalScore != want.FinalScore || got.InitialScore != want.InitialScore {
		t.Fatalf("warm re-run diverged: %s (%v→%v) vs %s (%v→%v)",
			got.ExplanationString(), got.InitialScore, got.FinalScore,
			want.ExplanationString(), want.InitialScore, want.FinalScore)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("trace length %d vs %d", len(got.Trace), len(want.Trace))
	}
}

// TestResumeKilledSearchReScoresOnlyLostWork simulates a crash: a first run
// is cut off by an exhausted intervention budget, the process "dies" (store
// closed), and a restarted full run against the same store must re-score
// only what the first run never evaluated — total raw oracle calls across
// both runs equal one uninterrupted run's, with zero repeats.
func TestResumeKilledSearchReScoresOnlyLostWork(t *testing.T) {
	seed := int64(5)
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})

	// Reference: the uninterrupted, storeless run.
	ref := pipeline.NewOracle(sc.System)
	clean := &core.Explainer{System: ref, Tau: 0.05, Seed: seed, Workers: 1}
	want, err := clean.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	full := ref.Calls()
	if full < 4 {
		t.Skipf("scenario solved in %d calls — too small to interrupt", full)
	}

	dir := t.TempDir()
	first := pipeline.NewOracle(sc.System)
	store := openStore(t, dir, sc.System)
	e1 := &core.Explainer{System: first, Tau: 0.05, Seed: seed, Workers: 1,
		MaxInterventions: full / 2, Store: store}
	if _, err := e1.ExplainGreedyPVTs(sc.PVTs, sc.Fail); err == nil {
		t.Fatal("half-budget run unexpectedly completed")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if first.Calls() == 0 || first.Calls() >= full {
		t.Fatalf("interrupted run made %d calls, want within (0, %d)", first.Calls(), full)
	}

	second := pipeline.NewOracle(sc.System)
	store2 := openStore(t, dir, sc.System)
	defer store2.Close()
	e2 := &core.Explainer{System: second, Tau: 0.05, Seed: seed, Workers: 1, Store: store2}
	got, err := e2.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if got.ExplanationString() != want.ExplanationString() || got.FinalScore != want.FinalScore {
		t.Fatalf("resumed run diverged: %s/%v vs %s/%v",
			got.ExplanationString(), got.FinalScore, want.ExplanationString(), want.FinalScore)
	}
	// Zero repeat evaluations: the two runs together cost exactly one
	// uninterrupted run, and the resumed half was served the rest from disk.
	if first.Calls()+second.Calls() != full {
		t.Fatalf("calls %d + %d = %d, want exactly %d (no repeats, no gaps)",
			first.Calls(), second.Calls(), first.Calls()+second.Calls(), full)
	}
	if got.Stats.StoreHits != first.Calls() {
		t.Fatalf("store hits = %d, want all %d scores from the interrupted run",
			got.Stats.StoreHits, first.Calls())
	}
	if got.Interventions != second.Calls() {
		t.Fatalf("interventions = %d, want only the %d fresh scores charged",
			got.Interventions, second.Calls())
	}
}
