package core

import (
	"context"
	"errors"
	"math"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/pipeline"
)

// VerifyExplanation independently re-verifies an explanation: it applies
// the PVTs' transformations to the failing dataset (Definition 9's
// composition) and checks the malfunction drops to τ or below, and — when
// checkMinimal is set — that no proper subset suffices (Definition 11).
// It reports the number of oracle calls spent.
func VerifyExplanation(sys pipeline.System, tau float64, fail *dataset.Dataset, expl []*PVT, seed int64, checkMinimal bool) (ok bool, calls int) {
	return VerifyExplanationContext(context.Background(), pipeline.AsContext(sys), tau, fail, expl, seed, checkMinimal)
}

// VerifyExplanationContext is VerifyExplanation over a context-aware
// system. The leave-one-out subset checks are independent, so they are
// evaluated as one engine batch.
func VerifyExplanationContext(ctx context.Context, sys pipeline.ContextSystem, tau float64, fail *dataset.Dataset, expl []*PVT, seed int64, checkMinimal bool) (ok bool, calls int) {
	e := &Explainer{Tau: tau, Seed: seed}
	ev := engine.New(sys, engine.Config{})
	rng := e.rng()
	composed := composeAll(fail, expl, nil, rng)
	s, err := ev.Score(ctx, composed)
	if err != nil || s > tau {
		return false, ev.Stats().Interventions
	}
	if !checkMinimal {
		return true, ev.Stats().Interventions
	}
	var cands []*dataset.Dataset
	for drop := range expl {
		reduced := make([]*PVT, 0, len(expl)-1)
		for i, p := range expl {
			if i != drop {
				reduced = append(reduced, p)
			}
		}
		if len(reduced) == 0 {
			continue // the empty set failing is given: fail itself scores > τ
		}
		cands = append(cands, composeAll(fail, reduced, nil, rng))
	}
	scores, errs, err := ev.EvalBatchErrs(ctx, cands)
	for _, sc := range scores {
		if !math.IsNaN(sc) && sc <= tau {
			return false, ev.Stats().Interventions // a subset suffices: not minimal
		}
	}
	// Minimality is only confirmed when every leave-one-out subset was
	// actually measured: an unevaluated slot could hide a sufficient subset.
	for _, slotErr := range errs {
		if slotErr != nil {
			return false, ev.Stats().Interventions
		}
	}
	return err == nil, ev.Stats().Interventions
}

// EnumerateExplanations returns up to maxCount distinct minimal
// explanations of the mismatch, an extension beyond the paper's
// "any minimal explanation" contract: after each explanation is found, its
// PVTs are removed from the candidate pool one combination at a time
// (banning one member per found explanation) and the greedy search reruns.
// Explanations are distinct as PVT sets. The search stops early when no
// further explanation exists.
func (e *Explainer) EnumerateExplanations(pass, fail *dataset.Dataset, maxCount int) ([][]*PVT, error) {
	return e.EnumerateExplanationsContext(context.Background(), pass, fail, maxCount)
}

// EnumerateExplanationsContext is EnumerateExplanations honoring the
// caller's context.
func (e *Explainer) EnumerateExplanationsContext(ctx context.Context, pass, fail *dataset.Dataset, maxCount int) ([][]*PVT, error) {
	return e.EnumerateExplanationsPVTsContext(ctx, e.discoverPVTs(pass, fail), fail, maxCount)
}

// EnumerateExplanationsPVTs is EnumerateExplanations over a pre-built
// candidate PVT set.
func (e *Explainer) EnumerateExplanationsPVTs(all []*PVT, fail *dataset.Dataset, maxCount int) ([][]*PVT, error) {
	return e.EnumerateExplanationsPVTsContext(context.Background(), all, fail, maxCount)
}

// EnumerateExplanationsPVTsContext is EnumerateExplanationsPVTs honoring
// the caller's context. All greedy reruns share one evaluation substrate,
// so the overlapping prefixes of successive searches are served from the
// memo cache instead of re-querying the system.
func (e *Explainer) EnumerateExplanationsPVTsContext(ctx context.Context, all []*PVT, fail *dataset.Dataset, maxCount int) ([][]*PVT, error) {
	if len(all) == 0 {
		return nil, ErrNoExplanation
	}
	sub := *e
	if sub.eval == nil {
		ev, err := e.newEval()
		if err != nil {
			return nil, err
		}
		sub.eval = ev
	}
	var out [][]*PVT
	seen := make(map[string]bool)
	// Frontier of candidate pools to search: start with the full pool.
	type pool struct{ banned map[*PVT]bool }
	frontier := []pool{{banned: map[*PVT]bool{}}}
	for len(out) < maxCount && len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		candidates := make([]*PVT, 0, len(all))
		for _, p := range all {
			if !cur.banned[p] {
				candidates = append(candidates, p)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		res, err := sub.ExplainGreedyPVTsContext(ctx, candidates, fail)
		if err != nil {
			if errors.Is(err, ErrNoExplanation) {
				continue
			}
			return out, err
		}
		key := explanationKey(res.Explanation)
		if !seen[key] {
			seen[key] = true
			out = append(out, res.Explanation)
			// Branch: ban each member of the found explanation in turn, so
			// later searches are forced onto different explanations
			// (the classic Lawler-style enumeration scheme).
			for _, p := range res.Explanation {
				banned := make(map[*PVT]bool, len(cur.banned)+1)
				for b := range cur.banned {
					banned[b] = true
				}
				banned[p] = true
				frontier = append(frontier, pool{banned: banned})
			}
		}
	}
	if len(out) == 0 {
		return nil, ErrNoExplanation
	}
	return out, nil
}

// explanationKey canonicalizes an explanation set for deduplication.
func explanationKey(expl []*PVT) string {
	keys := make([]string, len(expl))
	for i, p := range expl {
		keys[i] = p.Profile.Key()
	}
	// insertion sort: explanation sets are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		out += k + "|"
	}
	return out
}
