package core_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/synth"
)

// TestExplanationsAlwaysVerifyProperty is the whole-system invariant: for
// random synthetic scenarios, whatever explanation either algorithm
// returns must pass independent verification — composition below τ and
// minimality (Definition 11).
func TestExplanationsAlwaysVerifyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := synth.Options{
			NumPVTs:  8 + rng.Intn(24),
			NumAttrs: 2 + rng.Intn(6),
			Seed:     seed,
		}
		if rng.Intn(2) == 0 {
			opts.Conjunction = 1 + rng.Intn(3)
		} else {
			opts.Disjunction = 1 + rng.Intn(3)
		}
		sc := synth.New(opts)
		const tau = 0.05

		grd := &core.Explainer{System: sc.System, Tau: tau, Seed: seed}
		res, err := grd.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		if err != nil {
			if !errors.Is(err, core.ErrNoExplanation) {
				return false
			}
		} else {
			if ok, _ := core.VerifyExplanation(sc.System, tau, sc.Fail, res.Explanation, seed, true); !ok {
				t.Logf("seed %d: greedy explanation %s failed verification", seed, res.ExplanationString())
				return false
			}
		}

		gt := &core.Explainer{System: sc.System, Tau: tau, Seed: seed}
		gres, gerr := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		if gerr != nil {
			return errors.Is(gerr, core.ErrNoExplanation)
		}
		if ok, _ := core.VerifyExplanation(sc.System, tau, sc.Fail, gres.Explanation, seed, true); !ok {
			t.Logf("seed %d: GT explanation %s failed verification", seed, gres.ExplanationString())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestInterventionCountsBoundedProperty: both algorithms respect their
// theoretical intervention bounds on random single-cause scenarios — GRD at
// most |X| (+ minimality checks), GT O(t log |X|) with generous constants.
func TestInterventionCountsBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 8 + rng.Intn(40)
		sc := synth.New(synth.Options{NumPVTs: k, NumAttrs: 2 + rng.Intn(6), Conjunction: 1, Seed: seed})
		const tau = 0.05

		grd := &core.Explainer{System: sc.System, Tau: tau, Seed: seed}
		res, err := grd.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		if err != nil {
			return false
		}
		// Each PVT may try up to its transform count (1 here) plus the
		// minimality drop checks (≤ |explanation|).
		if res.Interventions > k+len(res.Explanation)+1 {
			return false
		}

		gt := &core.Explainer{System: sc.System, Tau: tau, Seed: seed}
		gres, gerr := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		if gerr != nil {
			return false
		}
		// 4·(⌈log2 k⌉+2) is a generous bound for a single cause.
		bound := 4 * (log2ceil(k) + 2)
		return gres.Interventions <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}
