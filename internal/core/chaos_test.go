package core_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/synth"
)

// chaosChain wraps a synthetic scenario's scorer in the full fault-tolerance
// stack: injector (K transient failures per distinct dataset) under a retry
// wrapper tight enough to absorb them.
func chaosChain(sys pipeline.System, failFirst, maxAttempts int) (*pipeline.FaultInjector, pipeline.FallibleSystem) {
	fi := &pipeline.FaultInjector{
		System:    pipeline.AsFallible(pipeline.AsContext(sys)),
		FailFirst: failFirst,
	}
	return fi, &pipeline.Retry{System: fi, Max: maxAttempts, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}
}

// TestChaosExplanationsMatchFaultFree is the acceptance bar of the
// fault-tolerance layer: with every evaluation failing transiently K ≤ 2
// times before succeeding, GRD and GT must return byte-identical
// explanations, final scores, intervention counts, and traces to the
// fault-free run — for Workers 1 and 8 alike — with the failed attempts
// visible only in the retry counter.
func TestChaosExplanationsMatchFaultFree(t *testing.T) {
	type runner func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error)
	algos := map[string]runner{
		"GRD": func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error) {
			return e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		},
		"GT": func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error) {
			return e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		},
	}
	for _, failFirst := range []int{1, 2} {
		for seed := int64(0); seed < 3; seed++ {
			sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})
			for name, run := range algos {
				clean := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed, Workers: 1}
				want, wantErr := run(clean, sc)
				for _, workers := range []int{1, 8} {
					fi, fall := chaosChain(sc.System, failFirst, failFirst+1)
					e := &core.Explainer{FallibleSystem: fall, Tau: 0.05, Seed: seed, Workers: workers}
					got, gotErr := run(e, sc)
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s seed %d K=%d workers=%d: error divergence: %v vs %v",
							name, seed, failFirst, workers, gotErr, wantErr)
					}
					if wantErr != nil {
						continue
					}
					if got.ExplanationString() != want.ExplanationString() {
						t.Errorf("%s seed %d K=%d workers=%d: explanation %s, fault-free %s",
							name, seed, failFirst, workers, got.ExplanationString(), want.ExplanationString())
					}
					if got.FinalScore != want.FinalScore || got.InitialScore != want.InitialScore {
						t.Errorf("%s seed %d K=%d workers=%d: scores (%v,%v) vs (%v,%v)",
							name, seed, failFirst, workers, got.InitialScore, got.FinalScore, want.InitialScore, want.FinalScore)
					}
					if got.Interventions != want.Interventions {
						t.Errorf("%s seed %d K=%d workers=%d: interventions %d, fault-free %d — failed attempts must not count",
							name, seed, failFirst, workers, got.Interventions, want.Interventions)
					}
					if len(got.Trace) != len(want.Trace) {
						t.Errorf("%s seed %d K=%d workers=%d: trace length %d vs %d",
							name, seed, failFirst, workers, len(got.Trace), len(want.Trace))
					}
					if got.Stats.Retries == 0 {
						t.Errorf("%s seed %d K=%d workers=%d: no retries recorded despite injected faults",
							name, seed, failFirst, workers)
					}
					if got.Stats.TransientFailures != 0 {
						t.Errorf("%s seed %d K=%d workers=%d: %d transient failures leaked past retry (Max=%d)",
							name, seed, failFirst, workers, got.Stats.TransientFailures, failFirst+1)
					}
					if fi.Injected() == 0 {
						t.Errorf("%s seed %d K=%d workers=%d: injector idle — chaos test exercised nothing",
							name, seed, failFirst, workers)
					}
				}
			}
		}
	}
}

// TestChaosDeterminismAcrossWorkers pins the stronger property: two chaos
// runs with different Workers settings agree with each other in every
// observable counter, including cache behavior.
func TestChaosDeterminismAcrossWorkers(t *testing.T) {
	seed := int64(4)
	sc := synth.New(synth.Options{NumPVTs: 24, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})
	run := func(workers int) (*core.Result, error) {
		_, fall := chaosChain(sc.System, 2, 3)
		e := &core.Explainer{FallibleSystem: fall, Tau: 0.05, Seed: seed, Workers: workers}
		return e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
	}
	seq, serr := run(1)
	par, perr := run(8)
	if (serr == nil) != (perr == nil) {
		t.Fatalf("error divergence: %v vs %v", serr, perr)
	}
	if serr != nil {
		t.Skipf("scenario unsolvable: %v", serr)
	}
	if seq.ExplanationString() != par.ExplanationString() {
		t.Errorf("explanations differ: %s vs %s", seq.ExplanationString(), par.ExplanationString())
	}
	if seq.Interventions != par.Interventions ||
		seq.Stats.CacheHits != par.Stats.CacheHits ||
		seq.Stats.CacheMisses != par.Stats.CacheMisses ||
		seq.Stats.Retries != par.Stats.Retries {
		t.Errorf("counter divergence under chaos: seq %+v vs par %+v", seq.Stats, par.Stats)
	}
}

// deadExceptBaseline succeeds on the original failing dataset (so the
// baseline measurement lands) and fails transiently on every transformed
// candidate — a scorer that dies as soon as the search starts intervening.
func deadExceptBaseline(sys pipeline.System, baseline *dataset.Dataset) pipeline.FallibleSystem {
	fp := baseline.Fingerprint()
	inner := pipeline.AsFallible(pipeline.AsContext(sys))
	return &pipeline.TryFunc{SystemName: sys.Name(), Try: func(ctx context.Context, d *dataset.Dataset) pipeline.ScoreResult {
		if d.Fingerprint() == fp {
			return inner.TryMalfunctionScore(ctx, d)
		}
		return pipeline.ScoreResult{
			Score:     math.NaN(),
			Err:       pipeline.ErrTransient,
			Transient: true,
			Attempts:  1,
		}
	}}
}

// TestChaosBreakerAbortsSearch: when the scorer dies permanently, the
// breaker must open and the search must surface ErrBreakerOpen instead of
// silently burning its whole candidate list on doomed evaluations.
func TestChaosBreakerAbortsSearch(t *testing.T) {
	seed := int64(1)
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 6, Conjunction: 1, CauseTopBenefit: true, Seed: seed})
	fall := &pipeline.Breaker{
		System:           &pipeline.Retry{System: deadExceptBaseline(sc.System, sc.Fail), Max: 2, BaseDelay: 50 * time.Microsecond},
		FailureThreshold: 2,
		Cooldown:         time.Hour,
	}
	e := &core.Explainer{FallibleSystem: fall, Tau: 0.05, Seed: seed, Workers: 1}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if !errors.Is(err, pipeline.ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen surfaced by the search", err)
	}
	if res == nil {
		t.Fatal("aborted search must return the partial result")
	}
	if res.Found {
		t.Error("search claimed success with a dead scorer")
	}
	if res.Stats.BreakerTrips == 0 {
		t.Error("no breaker trip recorded")
	}
	if res.Interventions != 0 {
		t.Errorf("interventions = %d, want 0: nothing was ever scored", res.Interventions)
	}
}

// TestChaosBudgetRefundLeavesRoom: failed evaluations must refund the
// budget, so a tight budget plus absorbed faults still completes exactly
// like the fault-free run.
func TestChaosBudgetRefundLeavesRoom(t *testing.T) {
	seed := int64(2)
	sc := synth.New(synth.Options{NumPVTs: 12, NumAttrs: 5, Conjunction: 1, CauseTopBenefit: true, Seed: seed})
	clean := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed, Workers: 1}
	want, wantErr := clean.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if wantErr != nil {
		t.Fatalf("fault-free run failed: %v", wantErr)
	}
	// Budget exactly what the fault-free run needed: with refunds working,
	// the chaos run fits; without them, the injected failures would eat the
	// budget and the search would fall short.
	_, fall := chaosChain(sc.System, 2, 3)
	e := &core.Explainer{FallibleSystem: fall, Tau: 0.05, Seed: seed, Workers: 1, MaxInterventions: want.Interventions}
	got, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("chaos run under exact budget failed: %v", err)
	}
	if got.ExplanationString() != want.ExplanationString() || got.Interventions != want.Interventions {
		t.Fatalf("chaos run diverged under exact budget: %s/%d vs %s/%d",
			got.ExplanationString(), got.Interventions, want.ExplanationString(), want.Interventions)
	}
}
