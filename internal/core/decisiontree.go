package core

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// ExplainWithDecisionTree implements the Appendix B extension (Algorithm 5)
// for settings where assumption A2 fails — interventions on single PVTs do
// not reduce malfunction, only certain conjunctions do. It leverages
// multiple passing and failing datasets: a decision tree is fitted over
// binary violation features (one per candidate PVT) with the pass/fail
// outcome as the label; each root-to-pure-pass-leaf path yields a candidate
// conjunction of PVTs whose joint repair is then verified by intervention
// on the failing dataset. Failed candidates are added as new training
// instances and the tree is rebuilt (Algorithm 5's update loop).
//
// examples are the known datasets (at least one passing and one failing);
// fail is the failing dataset to explain. Candidates are the PVTs
// discriminative between the first passing example and fail.
func (e *Explainer) ExplainWithDecisionTree(examples []*dataset.Dataset, fail *dataset.Dataset) (*Result, error) {
	return e.ExplainWithDecisionTreeContext(context.Background(), examples, fail)
}

// ExplainWithDecisionTreeContext is ExplainWithDecisionTree honoring the
// caller's context.
func (e *Explainer) ExplainWithDecisionTreeContext(ctx context.Context, examples []*dataset.Dataset, fail *dataset.Dataset) (*Result, error) {
	cs := e.contextSystem()
	if cs == nil {
		return nil, errors.New("core: Explainer requires a System or ContextSystem")
	}
	// Pick a passing exemplar to anchor candidate discovery.
	var pass *dataset.Dataset
	for _, d := range examples {
		if cs.MalfunctionScore(ctx, d) <= e.Tau {
			pass = d
			break
		}
	}
	var pvts []*PVT
	if pass != nil {
		pvts = e.discoverPVTs(pass, fail)
	}
	return e.ExplainWithDecisionTreePVTsContext(ctx, pvts, examples, fail)
}

// ExplainWithDecisionTreePVTs runs the Appendix B algorithm on a pre-built
// candidate PVT set (see ExplainWithDecisionTree).
func (e *Explainer) ExplainWithDecisionTreePVTs(pvts []*PVT, examples []*dataset.Dataset, fail *dataset.Dataset) (*Result, error) {
	return e.ExplainWithDecisionTreePVTsContext(context.Background(), pvts, examples, fail)
}

// ExplainWithDecisionTreePVTsContext is ExplainWithDecisionTreePVTs
// honoring the caller's context.
func (e *Explainer) ExplainWithDecisionTreePVTsContext(ctx context.Context, pvts []*PVT, examples []*dataset.Dataset, fail *dataset.Dataset) (*Result, error) {
	//lint:ignore seededrand wall-clock stamp for Result.Runtime reporting; never feeds scoring
	start := time.Now()
	ev, err := e.newEval()
	if err != nil {
		return nil, err
	}
	rng := e.rng()

	res := &Result{Discriminative: len(pvts)}
	res.InitialScore, err = ev.Baseline(ctx, fail)
	if err != nil {
		finish(res, ev, start)
		return res, err
	}
	res.FinalScore = res.InitialScore
	if res.InitialScore <= e.Tau {
		res.Found = true
		res.Transformed = fail.Clone()
		finish(res, ev, start)
		return res, nil
	}
	if len(pvts) == 0 {
		finish(res, ev, start)
		return res, ErrNoExplanation
	}

	// Training instances: binary violation vector + pass/fail outcome.
	featurize := func(d *dataset.Dataset) []bool {
		v := make([]bool, len(pvts))
		for i, p := range pvts {
			v[i] = p.Profile.Violation(d) > e.eps()
		}
		return v
	}
	var train []violationInstance
	for _, d := range examples {
		s, bErr := ev.Baseline(ctx, d)
		if bErr != nil {
			if engine.Fatal(bErr) {
				finish(res, ev, start)
				return res, bErr
			}
			continue // unlabelable example: skip rather than mislabel
		}
		train = append(train, violationInstance{violated: featurize(d), pass: s <= e.Tau})
	}
	train = append(train, violationInstance{violated: featurize(fail), pass: false})

	// Optional combinatorial-design bootstrap (Appendix B's cited [19]):
	// evaluate a strength-2 covering array of repair configurations so the
	// tree starts with instances covering every pairwise repair pattern —
	// enabling the method even when no example datasets are supplied. The
	// rows are independent, so they are composed serially and scored as one
	// engine batch.
	if e.BootstrapCoveringArray {
		rows := CoveringArray2(len(pvts))
		if r := ev.Remaining(); len(rows) > r {
			rows = rows[:r]
		}
		cands := make([]*dataset.Dataset, len(rows))
		for ri, row := range rows {
			group := make([]*PVT, 0, len(pvts))
			for i, on := range row {
				if on {
					group = append(group, pvts[i])
				}
			}
			cands[ri] = composeAll(fail, group, nil, rng)
		}
		scores, evalErr := ev.EvalBatch(ctx, cands)
		for ri, s := range scores {
			if math.IsNaN(s) {
				continue
			}
			train = append(train, violationInstance{violated: featurize(cands[ri]), pass: s <= e.Tau})
		}
		if evalErr != nil && !errors.Is(evalErr, engine.ErrBudgetExhausted) {
			finish(res, ev, start)
			return res, evalErr
		}
	}
	tried := make(map[string]bool)
	cov := newCoverageCache()
	// Algorithm 5 main loop: extract candidate conjunctions from the tree's
	// pure pass paths, verify by intervention, retrain on failures. The
	// loop is inherently sequential — each verification reshapes the tree.
	for iter := 0; iter < 16 && !ev.Exhausted(); iter++ {
		tree := buildViolationTree(train, len(pvts))
		paths := collectPassPaths(tree, nil)
		// Sort candidate conjunctions by total benefit on the failing
		// dataset, descending (Algorithm 5 line 3).
		sort.SliceStable(paths, func(a, b int) bool {
			return conjunctionBenefit(pvts, paths[a], fail, cov) > conjunctionBenefit(pvts, paths[b], fail, cov)
		})
		progressed := false
		for _, conj := range paths {
			if len(conj) == 0 {
				continue
			}
			key := conjKey(conj)
			if tried[key] {
				continue
			}
			tried[key] = true
			progressed = true
			group := make([]*PVT, len(conj))
			for i, idx := range conj {
				group[i] = pvts[idx]
			}
			dt := composeAll(fail, group, nil, rng)
			s, evalErr := ev.Score(ctx, dt)
			if evalErr != nil {
				if errors.Is(evalErr, engine.ErrBudgetExhausted) {
					break
				}
				if engine.Fatal(evalErr) {
					finish(res, ev, start)
					return res, evalErr
				}
				continue // transient measurement failure: try the next conjunction
			}
			accepted := s <= e.Tau
			res.Trace = append(res.Trace, Step{PVTs: pvtNames(group), Transform: "decision-tree conjunction", Score: s, Accepted: accepted})
			if accepted {
				expl, final, mmErr := e.makeMinimal(ctx, ev, fail, dt, group, nil, rng, &res.Trace)
				if mmErr != nil {
					finish(res, ev, start)
					return res, mmErr
				}
				res.Found = true
				res.Explanation = expl
				res.Transformed = final
				// Cache hit in the common case; keep the verified conjunction
				// score if the measurement fails.
				if fs, fsErr := ev.Baseline(ctx, final); fsErr == nil {
					res.FinalScore = fs
				} else {
					res.FinalScore = s
				}
				finish(res, ev, start)
				return res, nil
			}
			// Algorithm 5 line 10: add the transformed failing instance.
			train = append(train, violationInstance{violated: featurize(dt), pass: false})
			break // rebuild the tree with the new instance
		}
		if !progressed {
			break
		}
	}
	finish(res, ev, start)
	return res, ErrNoExplanation
}

// pvtNames renders a PVT group for the trace.
func pvtNames(pvts []*PVT) []string {
	out := make([]string, len(pvts))
	for i, p := range pvts {
		out[i] = p.String()
	}
	return out
}

// conjKey canonicalizes a conjunction for the tried-set.
func conjKey(conj []int) string {
	s := append([]int(nil), conj...)
	sort.Ints(s)
	key := ""
	for _, i := range s {
		key += string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	return key
}

// conjunctionBenefit sums the benefit of a conjunction's PVTs on fail. The
// sort comparator calls this O(n log n) times against the same fail, so the
// coverage terms come from the search's cache.
func conjunctionBenefit(pvts []*PVT, conj []int, fail *dataset.Dataset, cov *coverageCache) float64 {
	total := 0.0
	for _, i := range conj {
		total += benefitCached(pvts[i], fail, cov)
	}
	return total
}

// violationInstance is one training point for the Appendix B tree: the
// binary violation vector of a dataset plus whether the system passed on it.
type violationInstance struct {
	violated []bool
	pass     bool
}

// vtNode is a tiny ID3 decision tree over binary violation features.
type vtNode struct {
	leaf     bool
	pass     bool // majority / pure outcome at the leaf
	pure     bool
	feature  int
	violated *vtNode // branch where feature is violated
	clean    *vtNode // branch where feature is not violated
}

// buildViolationTree fits an ID3 tree on instances with binary violation
// features and a boolean pass outcome.
func buildViolationTree(train []violationInstance, numFeatures int) *vtNode {
	used := make([]bool, numFeatures)
	return growViolationTree(train, used, 0)
}

func growViolationTree(insts []violationInstance, used []bool, depth int) *vtNode {
	passes, fails := 0, 0
	for _, in := range insts {
		if in.pass {
			passes++
		} else {
			fails++
		}
	}
	node := &vtNode{leaf: true, pass: passes >= fails, pure: passes == 0 || fails == 0}
	if node.pure || depth >= len(used) {
		return node
	}
	// Pick the feature with the highest information gain.
	entropy := func(p, f int) float64 {
		n := float64(p + f)
		if n == 0 || p == 0 || f == 0 {
			return 0
		}
		pp, pf := float64(p)/n, float64(f)/n
		return -pp*math.Log2(pp) - pf*math.Log2(pf)
	}
	base := entropy(passes, fails)
	bestGain, bestFeat := 1e-12, -1
	for j := range used {
		if used[j] {
			continue
		}
		var vp, vf, cp, cf int
		for _, in := range insts {
			if in.violated[j] {
				if in.pass {
					vp++
				} else {
					vf++
				}
			} else {
				if in.pass {
					cp++
				} else {
					cf++
				}
			}
		}
		if vp+vf == 0 || cp+cf == 0 {
			continue
		}
		n := float64(len(insts))
		cond := float64(vp+vf)/n*entropy(vp, vf) + float64(cp+cf)/n*entropy(cp, cf)
		if gain := base - cond; gain > bestGain {
			bestGain, bestFeat = gain, j
		}
	}
	if bestFeat < 0 {
		return node
	}
	var vIn, cIn []violationInstance
	for _, in := range insts {
		if in.violated[bestFeat] {
			vIn = append(vIn, in)
		} else {
			cIn = append(cIn, in)
		}
	}
	used[bestFeat] = true
	node.leaf = false
	node.feature = bestFeat
	node.violated = growViolationTree(vIn, used, depth+1)
	node.clean = growViolationTree(cIn, used, depth+1)
	used[bestFeat] = false
	return node
}

// collectPassPaths walks the tree gathering, for each pure passing leaf,
// the set of features the path requires to be NOT violated — the PVTs whose
// joint repair the path predicts will make the system pass.
func collectPassPaths(n *vtNode, required []int) [][]int {
	if n == nil {
		return nil
	}
	if n.leaf {
		if n.pure && n.pass && len(required) > 0 {
			return [][]int{append([]int(nil), required...)}
		}
		return nil
	}
	var out [][]int
	out = append(out, collectPassPaths(n.clean, append(required, n.feature))...)
	out = append(out, collectPassPaths(n.violated, required)...)
	return out
}
