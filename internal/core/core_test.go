package core_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/transform"
)

// containsIndex reports whether the explanation includes the synthetic PVT
// with the given flag index.
func containsIndex(expl []*core.PVT, idx int) bool {
	for _, p := range expl {
		if sp, ok := p.Profile.(*synth.Profile); ok && sp.Index == idx {
			return true
		}
	}
	return false
}

func TestGreedySingleCause(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 20, NumAttrs: 5, Conjunction: 1, Seed: 1})
	e := &core.Explainer{System: sc.System, Tau: 0.1, Seed: 1}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("greedy failed: %v", err)
	}
	if !res.Found {
		t.Fatal("not found")
	}
	cause := sc.GroundTruth[0][0]
	if len(res.Explanation) != 1 || !containsIndex(res.Explanation, cause) {
		t.Errorf("explanation = %s, want {X%d}", res.ExplanationString(), cause+1)
	}
	if res.FinalScore > e.Tau {
		t.Errorf("final score = %g > tau", res.FinalScore)
	}
	if res.Interventions <= 0 || res.Interventions > 20 {
		t.Errorf("interventions = %d", res.Interventions)
	}
	if res.Discriminative != 20 {
		t.Errorf("discriminative = %d", res.Discriminative)
	}
}

func TestGreedyConjunctiveCause(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 24, NumAttrs: 6, Conjunction: 3, Seed: 2})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 2}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("greedy failed: %v", err)
	}
	if len(res.Explanation) != 3 {
		t.Fatalf("explanation size = %d, want 3: %s", len(res.Explanation), res.ExplanationString())
	}
	for _, idx := range sc.GroundTruth[0] {
		if !containsIndex(res.Explanation, idx) {
			t.Errorf("missing ground-truth PVT X%d", idx+1)
		}
	}
}

func TestGreedyMinimality(t *testing.T) {
	// The returned explanation must be minimal: dropping any PVT leaves the
	// malfunction above tau (Definition 11), verified against the system.
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 4, Conjunction: 2, Seed: 3})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 3}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	for drop := range res.Explanation {
		reduced := make([]*core.PVT, 0, len(res.Explanation)-1)
		for i, p := range res.Explanation {
			if i != drop {
				reduced = append(reduced, p)
			}
		}
		// Re-apply the reduced set on the failing dataset.
		d := sc.Fail
		for _, p := range reduced {
			out, err := p.Transforms[0].Apply(d, nil)
			if err != nil {
				t.Fatal(err)
			}
			d = out
		}
		if s := sc.System.MalfunctionScore(d); s <= e.Tau {
			t.Errorf("dropping %s still passes (score %g): explanation not minimal", res.Explanation[drop], s)
		}
	}
}

func TestGroupTestSingleCause(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 32, NumAttrs: 8, Conjunction: 1, Seed: 4})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 4}
	res, err := e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("group test failed: %v", err)
	}
	cause := sc.GroundTruth[0][0]
	if len(res.Explanation) != 1 || !containsIndex(res.Explanation, cause) {
		t.Errorf("explanation = %s, want {X%d}", res.ExplanationString(), cause+1)
	}
	// Logarithmic cost: far fewer than |X| interventions.
	if res.Interventions >= 32 {
		t.Errorf("GT interventions = %d, want < 32", res.Interventions)
	}
}

func TestGroupTestDisjunction(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 32, NumAttrs: 8, Disjunction: 3, Seed: 5})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 5}
	res, err := e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("group test failed: %v", err)
	}
	// Any single ground-truth PVT is a valid minimal explanation.
	if len(res.Explanation) != 1 {
		t.Fatalf("explanation = %s, want a single PVT", res.ExplanationString())
	}
	found := false
	for _, disj := range sc.GroundTruth {
		if containsIndex(res.Explanation, disj[0]) {
			found = true
		}
	}
	if !found {
		t.Errorf("explanation %s is not a ground-truth cause", res.ExplanationString())
	}
}

func TestRandomBisectionBaseline(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 32, NumAttrs: 8, Conjunction: 1, Seed: 6})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 6, RandomBisection: true}
	res, err := e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatalf("GrpTest baseline failed: %v", err)
	}
	if !res.Found || len(res.Explanation) != 1 {
		t.Errorf("GrpTest explanation = %s", res.ExplanationString())
	}
}

func TestAdversarialRankScenario(t *testing.T) {
	// Section 5.2: the true cause's benefit ranks 54th → GRD needs ~54
	// interventions while GT stays logarithmic.
	sc := synth.New(synth.Options{NumPVTs: 60, NumAttrs: 1, Conjunction: 1, Seed: 7, CauseCoverageRank: 54})
	grd := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 7}
	resGRD, err := grd.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if resGRD.Interventions != 54 {
		t.Errorf("GRD interventions = %d, want 54", resGRD.Interventions)
	}
	gt := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 7}
	resGT, err := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if resGT.Interventions >= resGRD.Interventions {
		t.Errorf("GT interventions = %d, want far fewer than GRD's %d", resGT.Interventions, resGRD.Interventions)
	}
}

func TestFigure6GroupTestBeatsRandom(t *testing.T) {
	// Figure 6: dependency-aware bisection requires no more interventions
	// than the traditional random-partition adaptive group testing
	// (averaged over seeds, since both are randomized).
	totalGT, totalRand := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		sc := synth.Figure6Scenario()
		gt := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed}
		r1, err := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		if err != nil {
			t.Fatal(err)
		}
		totalGT += r1.Interventions

		sc2 := synth.Figure6Scenario()
		rnd := &core.Explainer{System: sc2.System, Tau: 0.05, Seed: seed, RandomBisection: true}
		r2, err := rnd.ExplainGroupTestPVTs(sc2.PVTs, sc2.Fail)
		if err != nil {
			t.Fatal(err)
		}
		totalRand += r2.Interventions
	}
	// Both are randomized; on this toy the structured bisection should be
	// competitive (the paper reports 10 vs 14 for one execution).
	if float64(totalGT) > 1.3*float64(totalRand) {
		t.Errorf("GT total interventions %d far exceed random GT %d over 10 seeds", totalGT, totalRand)
	}
}

func TestAlignedBisectionBeatsRandom(t *testing.T) {
	// When PVTs sharing an attribute have correlated helpfulness — the
	// intuition behind Section 4.4's graph-guided partitioning — keeping
	// same-attribute PVTs together prunes spurious groups faster than
	// random partitioning, on average.
	build := func() *synth.Scenario {
		const k = 16
		profiles := make([]*synth.Profile, k)
		pvts := make([]*core.PVT, k)
		for i := 0; i < k; i++ {
			profiles[i] = &synth.Profile{
				Index: i,
				Attrs: []string{string(rune('a' + i/2))}, // pairs share attrs
				Cov:   0.5,
			}
			pvts[i] = &core.PVT{
				Profile:    profiles[i],
				Transforms: []transform.Transformation{&synth.Transform{P: profiles[i]}},
			}
		}
		// Ground truth: the attribute-sharing pair {X1, X2}.
		sys := &synth.DNFSystem{Label: "aligned", Disjuncts: [][]int{{0, 1}}, Profiles: profiles}
		return &synth.Scenario{PVTs: pvts, Fail: synth.FailingDataset(k), System: sys, GroundTruth: [][]int{{0, 1}}}
	}
	totalGT, totalRand := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		sc := build()
		gt := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed}
		r1, err := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		if err != nil {
			t.Fatal(err)
		}
		totalGT += r1.Interventions

		sc2 := build()
		rnd := &core.Explainer{System: sc2.System, Tau: 0.05, Seed: seed, RandomBisection: true}
		r2, err := rnd.ExplainGroupTestPVTs(sc2.PVTs, sc2.Fail)
		if err != nil {
			t.Fatal(err)
		}
		totalRand += r2.Interventions
	}
	if totalGT > totalRand {
		t.Errorf("aligned GT total %d > random GT total %d over 20 seeds", totalGT, totalRand)
	}
}

func TestNoExplanation(t *testing.T) {
	// A system whose malfunction never improves: both algorithms must
	// return ErrNoExplanation rather than a bogus explanation.
	sc := synth.New(synth.Options{NumPVTs: 8, NumAttrs: 2, Conjunction: 1, Seed: 8})
	stubborn := &pipeline.Func{SystemName: "stubborn", Score: func(*dataset.Dataset) float64 { return 0.9 }}
	e := &core.Explainer{System: stubborn, Tau: 0.1, Seed: 8}
	if _, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail); !errors.Is(err, core.ErrNoExplanation) {
		t.Errorf("greedy err = %v, want ErrNoExplanation", err)
	}
	if _, err := e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail); !errors.Is(err, core.ErrNoExplanation) {
		t.Errorf("group test err = %v, want ErrNoExplanation", err)
	}
}

func TestAlreadyPassing(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 8, NumAttrs: 2, Conjunction: 1, Seed: 9})
	fine := &pipeline.Func{SystemName: "fine", Score: func(*dataset.Dataset) float64 { return 0 }}
	e := &core.Explainer{System: fine, Tau: 0.1, Seed: 9}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil || !res.Found || len(res.Explanation) != 0 || res.Interventions != 0 {
		t.Errorf("already-passing dataset should need no interventions: %+v err=%v", res, err)
	}
}

func TestInterventionBudget(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 40, NumAttrs: 1, Conjunction: 1, Seed: 10, CauseCoverageRank: 40})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 10, MaxInterventions: 5}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if !errors.Is(err, core.ErrNoExplanation) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if res.Interventions > 5 {
		t.Errorf("interventions = %d exceeds budget 5", res.Interventions)
	}
}

func TestBenefitModesAblation(t *testing.T) {
	// All benefit modes must still find the cause; the full benefit should
	// not be slower than random ordering on a scenario where coverage is
	// informative (cause has the highest coverage).
	sc := synth.New(synth.Options{NumPVTs: 30, NumAttrs: 1, Conjunction: 1, Seed: 11, CauseCoverageRank: 1})
	for _, mode := range []core.BenefitMode{core.BenefitFull, core.BenefitViolationOnly, core.BenefitCoverageOnly, core.BenefitRandom} {
		e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 11, Benefit: mode}
		res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		if err != nil {
			t.Errorf("mode %d failed: %v", mode, err)
			continue
		}
		if !containsIndex(res.Explanation, sc.GroundTruth[0][0]) {
			t.Errorf("mode %d: wrong explanation %s", mode, res.ExplanationString())
		}
		if mode == core.BenefitFull && res.Interventions != 1 {
			t.Errorf("full benefit with top-ranked cause should need 1 intervention, got %d", res.Interventions)
		}
	}
}

func TestDisableGraphPriorityAblation(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 20, NumAttrs: 5, Conjunction: 1, Seed: 12})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 12, DisableGraphPriority: true}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil || !containsIndex(res.Explanation, sc.GroundTruth[0][0]) {
		t.Errorf("graph-priority ablation failed: %v %s", err, res.ExplanationString())
	}
}

func TestDecisionTreeInteractingPVTs(t *testing.T) {
	// A system violating A2: only fixing BOTH X1 and X2 reduces the
	// malfunction; single fixes achieve nothing. The greedy algorithm's
	// per-PVT Δ>0 gate cannot accept either alone, but the Appendix B
	// decision-tree approach finds the conjunction from example datasets.
	const k = 6
	profiles := make([]*synth.Profile, k)
	pvts := make([]*core.PVT, k)
	for i := 0; i < k; i++ {
		profiles[i] = &synth.Profile{Index: i, Attrs: []string{"a"}, Cov: 0.5}
		pvts[i] = &core.PVT{
			Profile:    profiles[i],
			Transforms: []transform.Transformation{&synth.Transform{P: profiles[i]}},
		}
	}
	// All-or-nothing system: passes only when X1 and X2 are both repaired.
	sys := &pipeline.Func{SystemName: "and-gate", Score: func(d *dataset.Dataset) float64 {
		if profiles[0].Violation(d) == 0 && profiles[1].Violation(d) == 0 {
			return 0
		}
		return 0.9
	}}
	fail := synth.FailingDataset(k)

	// Greedy cannot make progress: no single intervention reduces the score.
	grd := &core.Explainer{System: sys, Tau: 0.1, Seed: 14}
	if _, err := grd.ExplainGreedyPVTs(pvts, fail); !errors.Is(err, core.ErrNoExplanation) {
		t.Fatalf("greedy err = %v, want ErrNoExplanation under violated A2", err)
	}

	// Example datasets with assorted repair patterns and outcomes.
	repair := func(idx ...int) *dataset.Dataset {
		d := synth.FailingDataset(k)
		for _, i := range idx {
			d.SetNum(synth.FlagColumn, i, 0)
		}
		return d
	}
	examples := []*dataset.Dataset{
		repair(0, 1, 2), // passes
		repair(0),       // fails
		repair(1),       // fails
		repair(2, 3),    // fails
	}
	dt := &core.Explainer{System: sys, Tau: 0.1, Seed: 14}
	res, err := dt.ExplainWithDecisionTreePVTs(pvts, examples, fail)
	if err != nil {
		t.Fatalf("decision tree failed: %v", err)
	}
	if len(res.Explanation) != 2 || !containsIndex(res.Explanation, 0) || !containsIndex(res.Explanation, 1) {
		t.Errorf("explanation = %s, want {X1, X2}", res.ExplanationString())
	}
	if res.FinalScore > dt.Tau {
		t.Errorf("final score = %g", res.FinalScore)
	}
}

func TestTraceRecordsSteps(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 12, NumAttrs: 3, Conjunction: 2, Seed: 13})
	e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: 13}
	res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	accepted := 0
	for _, s := range res.Trace {
		if s.Accepted {
			accepted++
		}
		if math.IsNaN(s.Score) {
			t.Error("trace step has NaN score")
		}
	}
	if accepted == 0 {
		t.Error("no accepted steps in trace")
	}
	if res.Runtime <= 0 {
		t.Error("runtime not recorded")
	}
}
