package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profile"
)

// statusScenario builds a real-profile scenario: the failing dataset uses
// numeric-coded status values the system does not understand.
func statusScenario() (sys pipeline.System, pass, fail *dataset.Dataset) {
	sys = &pipeline.Func{SystemName: "status-consumer", Score: func(d *dataset.Dataset) float64 {
		c := d.Column("status")
		if c == nil || d.NumRows() == 0 {
			return 1
		}
		bad := 0
		for i := 0; i < d.NumRows(); i++ {
			if v := c.StrAt(i); v != "ok" && v != "error" {
				bad++
			}
		}
		return float64(bad) / float64(d.NumRows())
	}}
	mk := func(vals []string) *dataset.Dataset {
		n := len(vals)
		lat := make([]float64, n)
		for i := range lat {
			lat[i] = float64(10 + i%7)
		}
		d := dataset.New()
		d.MustAddCategorical("status", vals)
		d.MustAddNumeric("latency", lat)
		return d
	}
	pass = mk([]string{"ok", "error", "ok", "ok", "error", "ok", "ok", "ok"})
	fail = mk([]string{"0", "1", "0", "0", "1", "0", "0", "0"})
	return sys, pass, fail
}

func TestDatasetLevelGroupTest(t *testing.T) {
	sys, pass, fail := statusScenario()
	e := &core.Explainer{System: sys, Tau: 0.1, Seed: 81}
	res, err := e.ExplainGroupTest(pass, fail)
	if err != nil {
		t.Fatalf("dataset-level GT failed: %v", err)
	}
	if !strings.Contains(res.ExplanationString(), "Domain, status") {
		t.Errorf("explanation = %s", res.ExplanationString())
	}
	if res.FinalScore > e.Tau {
		t.Errorf("final score = %g", res.FinalScore)
	}
}

func TestDatasetLevelEnumerate(t *testing.T) {
	sys, pass, fail := statusScenario()
	e := &core.Explainer{System: sys, Tau: 0.1, Seed: 82}
	expls, err := e.EnumerateExplanations(pass, fail, 4)
	if err != nil {
		t.Fatalf("enumeration failed: %v", err)
	}
	if len(expls) == 0 {
		t.Fatal("no explanations")
	}
	found := false
	for _, expl := range expls {
		for _, p := range expl {
			if p.Profile.Key() == "domain:status" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("status domain missing from %d explanations", len(expls))
	}
}

func TestDatasetLevelDecisionTree(t *testing.T) {
	sys, pass, fail := statusScenario()
	e := &core.Explainer{System: sys, Tau: 0.1, Seed: 83}
	res, err := e.ExplainWithDecisionTree([]*dataset.Dataset{pass}, fail)
	if err != nil {
		t.Fatalf("dataset-level decision tree failed: %v", err)
	}
	if !strings.Contains(res.ExplanationString(), "Domain, status") {
		t.Errorf("explanation = %s", res.ExplanationString())
	}
}

func TestDatasetLevelDecisionTreeNoPassingExample(t *testing.T) {
	sys, _, fail := statusScenario()
	e := &core.Explainer{System: sys, Tau: 0.1, Seed: 84}
	// Only failing examples supplied: candidate discovery has no anchor.
	if _, err := e.ExplainWithDecisionTree([]*dataset.Dataset{fail.Clone()}, fail); err == nil {
		t.Error("no passing exemplar should fail cleanly")
	}
}

func TestExplainerDefaults(t *testing.T) {
	sys, pass, fail := statusScenario()
	// Custom options thread through the dataset-level entry points.
	opts := profile.DefaultOptions()
	opts.Classes = map[string]bool{"selectivity": false, "indep": false}
	e := &core.Explainer{System: sys, Tau: 0.1, Options: &opts, Seed: 85, Eps: 1e-6}
	res, err := e.ExplainGreedy(pass, fail)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Explanation {
		if p.Profile.Type() == "selectivity" || p.Profile.Type() == "indep" {
			t.Errorf("disabled class leaked into explanation: %s", p)
		}
	}
	if res.ExplanationString() == "" || !strings.HasPrefix(res.ExplanationString(), "{") {
		t.Errorf("ExplanationString = %q", res.ExplanationString())
	}
}
