package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
)

// scoredDataset pairs a dataset with its (possibly not yet evaluated)
// malfunction score, so Algorithm 3's line-5 re-evaluation only costs an
// oracle call when the dataset actually changed since it was last scored.
type scoredDataset struct {
	d     *dataset.Dataset
	score float64
	known bool
}

// gtGroupState is the working state of Algorithm 3's recursion.
type gtGroupState struct {
	e     *Explainer
	ev    *engine.Eval
	ctx   context.Context
	pvts  []*PVT
	g     *graph.PVTAttr
	rng   *rand.Rand
	trace []Step
	err   error // first context/engine error other than budget exhaustion
}

// ExplainGroupTest runs DataPrismGT (Algorithm 2): the discriminative PVTs
// are recursively partitioned — by min-bisection of the PVT-dependency
// graph, or uniformly at random when RandomBisection is set (the paper's
// GrpTest baseline) — and intervened on as groups (Algorithm 3), followed
// by the Make-Minimal post-pass.
//
// Group testing additionally requires assumption A3 (Section 4.4); when it
// does not hold the final composed fix may fail verification, in which case
// ErrNoExplanation is returned with the partial Result — the paper reports
// exactly this as "NA" for the cardiovascular case study.
func (e *Explainer) ExplainGroupTest(pass, fail *dataset.Dataset) (*Result, error) {
	return e.ExplainGroupTestContext(context.Background(), pass, fail)
}

// ExplainGroupTestContext is ExplainGroupTest honoring the caller's
// context.
func (e *Explainer) ExplainGroupTestContext(ctx context.Context, pass, fail *dataset.Dataset) (*Result, error) {
	// Algorithm 2, lines 1-4: discriminative PVTs.
	return e.ExplainGroupTestPVTsContext(ctx, e.discoverPVTs(pass, fail), fail)
}

// ExplainGroupTestPVTs runs DataPrismGT on a pre-built discriminative PVT
// set, bypassing profile discovery — used by the synthetic-pipeline
// experiments that construct PVTs directly.
func (e *Explainer) ExplainGroupTestPVTs(pvts []*PVT, fail *dataset.Dataset) (*Result, error) {
	return e.ExplainGroupTestPVTsContext(context.Background(), pvts, fail)
}

// ExplainGroupTestPVTsContext is ExplainGroupTestPVTs honoring the caller's
// context.
func (e *Explainer) ExplainGroupTestPVTsContext(ctx context.Context, pvts []*PVT, fail *dataset.Dataset) (*Result, error) {
	//lint:ignore seededrand wall-clock stamp for Result.Runtime reporting; never feeds scoring
	start := time.Now()
	ev, err := e.newEval()
	if err != nil {
		return nil, err
	}
	rng := e.rng()

	res := &Result{Discriminative: len(pvts)}
	res.InitialScore, err = ev.Baseline(ctx, fail)
	if err != nil {
		finish(res, ev, start)
		return res, err
	}
	res.FinalScore = res.InitialScore
	if res.InitialScore <= e.Tau {
		res.Found = true
		res.Transformed = fail.Clone()
		finish(res, ev, start)
		return res, nil
	}

	// Algorithm 2, lines 5-6: dependency graph and the Group-Test recursion.
	st := &gtGroupState{
		e:    e,
		ev:   ev,
		ctx:  ctx,
		pvts: pvts,
		g:    buildGraph(pvts),
		rng:  rng,
	}
	all := make([]int, len(pvts))
	for i := range all {
		all[i] = i
	}
	final, explIdx := st.run(all, &scoredDataset{d: fail, score: res.InitialScore, known: true})
	res.Trace = st.trace
	if st.err != nil {
		finish(res, ev, start)
		return res, st.err
	}

	finalScore, err := ev.Baseline(ctx, final.d)
	if err != nil {
		finish(res, ev, start)
		return res, err
	}
	if finalScore > e.Tau {
		res.FinalScore = finalScore
		finish(res, ev, start)
		return res, ErrNoExplanation
	}

	// Algorithm 2, line 7: minimality post-pass.
	expl := make([]*PVT, len(explIdx))
	for i, idx := range explIdx {
		expl[i] = pvts[idx]
	}
	expl, d, mmErr := e.makeMinimal(ctx, ev, fail, final.d, expl, nil, rng, &res.Trace)
	if mmErr != nil {
		res.FinalScore = finalScore
		finish(res, ev, start)
		return res, mmErr
	}
	res.Found = true
	res.Explanation = expl
	res.Transformed = d
	// Cache hit in the common case; keep the verified pre-minimality score
	// if the measurement fails.
	if fs, fsErr := ev.Baseline(ctx, d); fsErr == nil {
		res.FinalScore = fs
	} else {
		res.FinalScore = finalScore
	}
	finish(res, ev, start)
	return res, nil
}

// score lazily evaluates the dataset's malfunction, counting the call
// through the engine (memoized re-evaluations are free). Fatal errors —
// cancellation, deadline, an open circuit breaker — latch st.err and end
// the recursion; a transient per-slot measurement failure or an exhausted
// budget merely leaves this dataset unscored (treated as unhelpful).
func (st *gtGroupState) score(x *scoredDataset) float64 {
	if !x.known {
		s, err := st.ev.Score(st.ctx, x.d)
		if err != nil {
			if engine.Fatal(err) && st.err == nil {
				st.err = err
			}
			return math.Inf(1)
		}
		x.score, x.known = s, true
	}
	return x.score
}

// applyGroup composes the transformations of all PVTs in X onto d —
// the group intervention X_T(D) of Algorithm 3. d is never mutated: the
// group works on one clone, using the in-place fast path where available.
func (st *gtGroupState) applyGroup(d *dataset.Dataset, x []int) *dataset.Dataset {
	cur := d.Clone()
	for _, i := range x {
		out, _, err := applyPVTOwned(cur, orderTransforms(st.pvts[i], st.g), st.rng)
		if err == nil {
			cur = out
		}
	}
	return cur
}

// names renders a PVT index group for the trace.
func (st *gtGroupState) names(x []int) []string {
	out := make([]string, len(x))
	for i, idx := range x {
		out[i] = st.pvts[idx].String()
	}
	return out
}

// run is Algorithm 3 (Group-Test).
func (st *gtGroupState) run(x []int, cur *scoredDataset) (*scoredDataset, []int) {
	if len(x) == 0 || st.err != nil || st.ev.Exhausted() {
		return cur, nil
	}
	// Lines 2-3: a singleton candidate is transformed and returned without
	// further evaluation; the surrounding recursion has already verified
	// that this group reduces the malfunction.
	if len(x) == 1 {
		return &scoredDataset{d: st.applyGroup(cur.d, x)}, []int{x[0]}
	}

	// Line 4: partition the candidates.
	var x1, x2 []int
	if st.e.RandomBisection {
		x1, x2 = graph.RandomBisection(x, st.rng)
	} else {
		x1, x2 = st.g.Dependency(x).MinBisection(st.rng)
	}

	// Line 5: malfunction of the entry dataset.
	m := st.score(cur)
	if st.err != nil {
		return cur, nil
	}

	// Lines 6-8, parallelized: both group interventions are composed
	// serially (deterministic rng order) and evaluated as one engine batch.
	// Algorithm 3 consults X2's score only when X1 alone is insufficient,
	// so evaluating both never changes which explanation the recursion
	// finds — it trades up to one extra counted intervention per split for
	// halved wall-clock depth on expensive systems (this subsumes the old
	// SpeculativeParallel flag; with Workers=1 the batch runs inline).
	d1 := &scoredDataset{d: st.applyGroup(cur.d, x1)}
	d2 := &scoredDataset{d: st.applyGroup(cur.d, x2)}
	scores, err := st.ev.EvalBatch(st.ctx, []*dataset.Dataset{d1.d, d2.d})
	if err != nil && !errors.Is(err, engine.ErrBudgetExhausted) && st.err == nil {
		st.err = err
	}
	s1, s2 := math.Inf(1), math.Inf(1)
	if !math.IsNaN(scores[0]) {
		d1.score, d1.known = scores[0], true
		s1 = scores[0]
		st.trace = append(st.trace, Step{PVTs: st.names(x1), Transform: "group", Score: s1, Accepted: s1 < m})
	}
	if !math.IsNaN(scores[1]) {
		d2.score, d2.known = scores[1], true
		s2 = scores[1]
		st.trace = append(st.trace, Step{PVTs: st.names(x2), Transform: "group", Score: s2, Accepted: s2 < m})
	}
	if st.err != nil {
		return cur, nil
	}

	var expl []int
	entry := cur
	// Lines 9-13: recurse into X1 when it suffices alone, or when it helps
	// while X2 alone is insufficient.
	if s1 <= st.e.Tau || (s1 < m && s2 > st.e.Tau) {
		if len(x1) == 1 {
			cur = d1 // reuse the already-applied singleton intervention
			expl = append(expl, x1[0])
		} else {
			next, e1 := st.run(x1, cur)
			cur = next
			expl = append(expl, e1...)
		}
		if s1 <= st.e.Tau {
			return cur, expl
		}
	}
	// Lines 14-16: recurse into X2 when its group intervention helped.
	if d2.known && s2 < m {
		if len(x2) == 1 && cur == entry {
			cur = d2
			expl = append(expl, x2[0])
		} else {
			next, e2 := st.run(x2, cur)
			cur = next
			expl = append(expl, e2...)
		}
	}
	return cur, expl
}
