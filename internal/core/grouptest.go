package core

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/pipeline"
)

// scoredDataset pairs a dataset with its (possibly not yet evaluated)
// malfunction score, so Algorithm 3's line-5 re-evaluation only costs an
// oracle call when the dataset actually changed since it was last scored.
type scoredDataset struct {
	d     *dataset.Dataset
	score float64
	known bool
}

// gtGroupState is the working state of Algorithm 3's recursion.
type gtGroupState struct {
	e      *Explainer
	oracle *pipeline.Oracle
	pvts   []*PVT
	g      *graph.PVTAttr
	rng    *rand.Rand
	calls  int
	trace  []Step
}

// ExplainGroupTest runs DataPrismGT (Algorithm 2): the discriminative PVTs
// are recursively partitioned — by min-bisection of the PVT-dependency
// graph, or uniformly at random when RandomBisection is set (the paper's
// GrpTest baseline) — and intervened on as groups (Algorithm 3), followed
// by the Make-Minimal post-pass.
//
// Group testing additionally requires assumption A3 (Section 4.4); when it
// does not hold the final composed fix may fail verification, in which case
// ErrNoExplanation is returned with the partial Result — the paper reports
// exactly this as "NA" for the cardiovascular case study.
func (e *Explainer) ExplainGroupTest(pass, fail *dataset.Dataset) (*Result, error) {
	// Algorithm 2, lines 1-4: discriminative PVTs.
	return e.ExplainGroupTestPVTs(DiscoverPVTs(pass, fail, e.options(), e.eps()), fail)
}

// ExplainGroupTestPVTs runs DataPrismGT on a pre-built discriminative PVT
// set, bypassing profile discovery — used by the synthetic-pipeline
// experiments that construct PVTs directly.
func (e *Explainer) ExplainGroupTestPVTs(pvts []*PVT, fail *dataset.Dataset) (*Result, error) {
	start := time.Now()
	oracle := pipeline.NewOracle(e.System)
	rng := e.rng()

	res := &Result{Discriminative: len(pvts)}
	res.InitialScore = oracle.Exempt(fail)
	res.FinalScore = res.InitialScore
	if res.InitialScore <= e.Tau {
		res.Found = true
		res.Transformed = fail.Clone()
		res.Runtime = time.Since(start)
		return res, nil
	}

	// Algorithm 2, lines 5-6: dependency graph and the Group-Test recursion.
	st := &gtGroupState{
		e:      e,
		oracle: oracle,
		pvts:   pvts,
		g:      buildGraph(pvts),
		rng:    rng,
	}
	all := make([]int, len(pvts))
	for i := range all {
		all[i] = i
	}
	final, explIdx := st.run(all, &scoredDataset{d: fail, score: res.InitialScore, known: true})
	res.Trace = st.trace
	res.Interventions = st.calls

	finalScore := oracle.Exempt(final.d)
	if finalScore > e.Tau {
		res.FinalScore = finalScore
		res.Runtime = time.Since(start)
		return res, ErrNoExplanation
	}

	// Algorithm 2, line 7: minimality post-pass.
	expl := make([]*PVT, len(explIdx))
	for i, idx := range explIdx {
		expl[i] = pvts[idx]
	}
	calls := st.calls
	expl, d := e.makeMinimal(oracle, fail, final.d, expl, nil, rng, &res.Trace, &calls)
	res.Interventions = calls
	res.Found = true
	res.Explanation = expl
	res.Transformed = d
	res.FinalScore = oracle.Exempt(d)
	res.Runtime = time.Since(start)
	return res, nil
}

// score lazily evaluates the dataset's malfunction, counting the call.
func (st *gtGroupState) score(x *scoredDataset) float64 {
	if !x.known {
		if st.calls >= st.e.maxInterventions() {
			return math.Inf(1)
		}
		x.score = st.oracle.MalfunctionScore(x.d)
		x.known = true
		st.calls++
	}
	return x.score
}

// applyGroup composes the transformations of all PVTs in X onto d —
// the group intervention X_T(D) of Algorithm 3. d is never mutated: the
// group works on one clone, using the in-place fast path where available.
func (st *gtGroupState) applyGroup(d *dataset.Dataset, x []int) *dataset.Dataset {
	cur := d.Clone()
	for _, i := range x {
		out, _, err := applyPVTOwned(cur, orderTransforms(st.pvts[i], st.g), st.rng)
		if err == nil {
			cur = out
		}
	}
	return cur
}

// names renders a PVT index group for the trace.
func (st *gtGroupState) names(x []int) []string {
	out := make([]string, len(x))
	for i, idx := range x {
		out[i] = st.pvts[idx].String()
	}
	return out
}

// run is Algorithm 3 (Group-Test).
func (st *gtGroupState) run(x []int, cur *scoredDataset) (*scoredDataset, []int) {
	if len(x) == 0 || st.calls >= st.e.maxInterventions() {
		return cur, nil
	}
	// Lines 2-3: a singleton candidate is transformed and returned without
	// further evaluation; the surrounding recursion has already verified
	// that this group reduces the malfunction.
	if len(x) == 1 {
		return &scoredDataset{d: st.applyGroup(cur.d, x)}, []int{x[0]}
	}

	// Line 4: partition the candidates.
	var x1, x2 []int
	if st.e.RandomBisection {
		x1, x2 = graph.RandomBisection(x, st.rng)
	} else {
		x1, x2 = st.g.Dependency(x).MinBisection(st.rng)
	}

	// Line 5: malfunction of the entry dataset.
	m := st.score(cur)

	var (
		d1, d2 *scoredDataset
		s1     float64
		s2     = math.Inf(1)
	)
	if st.e.SpeculativeParallel && st.calls+2 <= st.e.maxInterventions() {
		// Speculative evaluation: both group interventions run
		// concurrently; X2's result may go unused when X1 suffices.
		d1 = &scoredDataset{d: st.applyGroup(cur.d, x1)}
		d2 = &scoredDataset{d: st.applyGroup(cur.d, x2)}
		done := make(chan struct{})
		go func() {
			d2.score = st.oracle.MalfunctionScore(d2.d)
			d2.known = true
			close(done)
		}()
		d1.score = st.oracle.MalfunctionScore(d1.d)
		d1.known = true
		<-done
		st.calls += 2
		s1, s2 = d1.score, d2.score
		st.trace = append(st.trace, Step{PVTs: st.names(x1), Transform: "group", Score: s1, Accepted: s1 < m})
		st.trace = append(st.trace, Step{PVTs: st.names(x2), Transform: "group (speculative)", Score: s2, Accepted: s2 < m})
	} else {
		// Line 6: group intervention on X1.
		d1 = &scoredDataset{d: st.applyGroup(cur.d, x1)}
		s1 = st.score(d1)
		st.trace = append(st.trace, Step{PVTs: st.names(x1), Transform: "group", Score: s1, Accepted: s1 < m})

		// Lines 7-8: try X2 only if X1 alone is insufficient.
		if s1 > st.e.Tau {
			d2 = &scoredDataset{d: st.applyGroup(cur.d, x2)}
			s2 = st.score(d2)
			st.trace = append(st.trace, Step{PVTs: st.names(x2), Transform: "group", Score: s2, Accepted: s2 < m})
		}
	}

	var expl []int
	entry := cur
	// Lines 9-13: recurse into X1 when it suffices alone, or when it helps
	// while X2 alone is insufficient.
	if s1 <= st.e.Tau || (s1 < m && s2 > st.e.Tau) {
		if len(x1) == 1 {
			cur = d1 // reuse the already-applied singleton intervention
			expl = append(expl, x1[0])
		} else {
			next, e1 := st.run(x1, cur)
			cur = next
			expl = append(expl, e1...)
		}
		if s1 <= st.e.Tau {
			return cur, expl
		}
	}
	// Lines 14-16: recurse into X2 when its group intervention helped.
	if d2 != nil && s2 < m {
		if len(x2) == 1 && cur == entry {
			cur = d2
			expl = append(expl, x2[0])
		} else {
			next, e2 := st.run(x2, cur)
			cur = next
			expl = append(expl, e2...)
		}
	}
	return cur, expl
}
