package core_test

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/scorestore"
	"repro/internal/synth"
)

// benchOracleCost models the paper's premise — the system under debugging
// is an expensive black box — so the benchmark measures oracle economics,
// not search-bookkeeping noise.
const benchOracleCost = 2 * time.Millisecond

// slowSystem charges a fixed latency per evaluation, like an external
// scoring process would.
type slowSystem struct {
	pipeline.System
}

func (s *slowSystem) MalfunctionScore(d *dataset.Dataset) float64 {
	time.Sleep(benchOracleCost)
	return s.System.MalfunctionScore(d)
}

// BenchmarkWarmCacheRerun measures the persistent score store's headline
// effect: re-running a completed search. The cold case pays every oracle
// evaluation at benchOracleCost; the warm case replays the same search
// against the store of a finished run and must perform zero raw oracle
// evaluations.
func BenchmarkWarmCacheRerun(b *testing.B) {
	seed := int64(3)
	sc := synth.New(synth.Options{NumPVTs: 16, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})
	slow := &slowSystem{System: sc.System}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := &core.Explainer{System: slow, Tau: 0.05, Seed: seed, Workers: 1}
			if _, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		seedStore, err := scorestore.Open(dir, slow.Name(), scorestore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		e := &core.Explainer{System: slow, Tau: 0.05, Seed: seed, Workers: 1, Store: seedStore}
		if _, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail); err != nil {
			b.Fatal(err)
		}
		if err := seedStore.Close(); err != nil {
			b.Fatal(err)
		}

		oracle := pipeline.NewOracle(slow)
		store, err := scorestore.Open(dir, slow.Name(), scorestore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := &core.Explainer{System: oracle, Tau: 0.05, Seed: seed, Workers: 1, Store: store}
			if _, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if oracle.Calls() != 0 {
			b.Fatalf("warm reruns made %d raw oracle calls, want 0", oracle.Calls())
		}
	})
}
