package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/synth"
	"repro/internal/transform"
)

// TestDeterminismAcrossWorkers is the engine's core contract: the worker
// pool only changes wall-clock time, never the search outcome. Same seed ⇒
// same explanation, same final score, and same counted interventions for
// Workers=1 and Workers=8, for both GRD and GT.
func TestDeterminismAcrossWorkers(t *testing.T) {
	type runner func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error)
	algos := map[string]runner{
		"GRD": func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error) {
			return e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		},
		"GT": func(e *core.Explainer, sc *synth.Scenario) (*core.Result, error) {
			return e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		},
	}
	for seed := int64(0); seed < 6; seed++ {
		// Conjunction 2 exercises the make-minimal batch path too.
		sc := synth.New(synth.Options{NumPVTs: 24, NumAttrs: 6, Conjunction: 2, CauseTopBenefit: true, Seed: seed})
		for name, run := range algos {
			seq := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed, Workers: 1}
			par := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed, Workers: 8}
			sres, serr := run(seq, sc)
			pres, perr := run(par, sc)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%s seed %d: error divergence: %v vs %v", name, seed, serr, perr)
			}
			if serr != nil {
				continue
			}
			if got, want := pres.ExplanationString(), sres.ExplanationString(); got != want {
				t.Errorf("%s seed %d: explanation differs across workers: %s vs %s", name, seed, got, want)
			}
			if pres.FinalScore != sres.FinalScore {
				t.Errorf("%s seed %d: final score differs: %v vs %v", name, seed, pres.FinalScore, sres.FinalScore)
			}
			if pres.Interventions != sres.Interventions {
				t.Errorf("%s seed %d: interventions differ: %d vs %d", name, seed, pres.Interventions, sres.Interventions)
			}
			if pres.Stats.CacheHits != sres.Stats.CacheHits {
				t.Errorf("%s seed %d: cache hits differ: %d vs %d", name, seed, pres.Stats.CacheHits, sres.Stats.CacheHits)
			}
			if len(pres.Trace) != len(sres.Trace) {
				t.Errorf("%s seed %d: trace length differs: %d vs %d", name, seed, len(pres.Trace), len(sres.Trace))
			}
		}
	}
}

// cancelAfter wraps a System in a ContextSystem that cancels the search
// after n evaluations — simulating a caller pulling the plug mid-search.
func cancelAfter(sys pipeline.System, n int64, cancel context.CancelFunc) pipeline.ContextSystem {
	var evals atomic.Int64
	return &pipeline.CtxFunc{
		SystemName: sys.Name(),
		Score: func(_ context.Context, d *dataset.Dataset) float64 {
			if evals.Add(1) == n {
				cancel()
			}
			return sys.MalfunctionScore(d)
		},
	}
}

func TestCancellationMidGreedySearch(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 32, NumAttrs: 8, Conjunction: 1, CauseCoverageRank: 30, Seed: 9})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := &core.Explainer{ContextSystem: cancelAfter(sc.System, 4, cancel), Tau: 0.05, Seed: 9, Workers: 2}
	start := time.Now()
	res, err := e.ExplainGreedyPVTsContext(ctx, sc.PVTs, sc.Fail)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled search must return the partial result")
	}
	if len(res.Trace) == 0 {
		t.Error("cancelled search should carry a partial trace")
	}
	if res.Found {
		t.Error("cancelled search reported Found")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation not prompt: %v", elapsed)
	}
}

func TestCancellationMidGroupTest(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 64, NumAttrs: 8, Conjunction: 1, CauseTopBenefit: true, Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := &core.Explainer{ContextSystem: cancelAfter(sc.System, 4, cancel), Tau: 0.05, Seed: 5, Workers: 2}
	res, err := e.ExplainGroupTestPVTsContext(ctx, sc.PVTs, sc.Fail)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Found {
		t.Fatal("cancelled GT must return a partial, not-found result")
	}
	if len(res.Trace) == 0 {
		t.Error("cancelled GT should carry a partial trace")
	}
}

// TestMemoCacheHitsDuringSearch builds a scenario with two PVTs repairing
// the same underlying defect (both clear flag 0): group testing and the
// make-minimal post-pass then compose identical datasets more than once,
// which the engine's fingerprint cache must serve without extra
// interventions.
func TestMemoCacheHitsDuringSearch(t *testing.T) {
	profiles := []*synth.Profile{
		{Index: 0, Attrs: []string{"a0"}, Cov: 0.9},
		{Index: 0, Attrs: []string{"a0"}, Cov: 0.7}, // duplicate repair of flag 0
		{Index: 1, Attrs: []string{"a1"}, Cov: 0.8},
	}
	pvts := make([]*core.PVT, len(profiles))
	for i, p := range profiles {
		pvts[i] = &core.PVT{Profile: p, Transforms: []transform.Transformation{&synth.Transform{P: p}}}
	}
	// Root cause: flag 0 AND flag 1 must both clear (profiles[0] and [2]).
	sys := &synth.DNFSystem{Label: "dup-repair", Disjuncts: [][]int{{0, 2}}, Profiles: profiles}
	fail := synth.FailingDataset(2)

	e := &core.Explainer{System: sys, Tau: 0.05, Seed: 3}
	res, err := e.ExplainGroupTestPVTs(pvts, fail)
	if err != nil {
		t.Fatalf("GT failed: %v", err)
	}
	if !res.Found {
		t.Fatal("no explanation found")
	}
	if res.Stats.CacheHits == 0 {
		t.Fatalf("expected memo-cache hits on duplicate-repair run, stats = %+v", res.Stats)
	}
	if res.Stats.Interventions != res.Interventions {
		t.Fatalf("Result.Interventions (%d) != Stats.Interventions (%d)", res.Interventions, res.Stats.Interventions)
	}
	if res.Stats.Latency.Count == 0 {
		t.Fatal("latency histogram empty")
	}
}

// TestContextSystemPreferred checks that a configured ContextSystem wins
// over the legacy System field and actually receives the caller's context.
func TestContextSystemPreferred(t *testing.T) {
	sc := synth.New(synth.Options{NumPVTs: 8, NumAttrs: 4, Conjunction: 1, Seed: 2})
	type ctxKey struct{}
	sawValue := atomic.Bool{}
	cs := &pipeline.CtxFunc{SystemName: "ctx-aware", Score: func(ctx context.Context, d *dataset.Dataset) float64 {
		if ctx.Value(ctxKey{}) == "marker" {
			sawValue.Store(true)
		}
		return sc.System.MalfunctionScore(d)
	}}
	legacy := &pipeline.Func{SystemName: "legacy", Score: func(d *dataset.Dataset) float64 {
		t.Error("legacy System called although ContextSystem was set")
		return 1
	}}
	e := &core.Explainer{System: legacy, ContextSystem: cs, Tau: 0.05, Seed: 2}
	ctx := context.WithValue(context.Background(), ctxKey{}, "marker")
	if _, err := e.ExplainGreedyPVTsContext(ctx, sc.PVTs, sc.Fail); err != nil {
		t.Fatal(err)
	}
	if !sawValue.Load() {
		t.Error("caller context did not reach the system")
	}
}
