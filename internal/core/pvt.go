// Package core implements DataPrism's intervention algorithms — the paper's
// primary contribution: greedy root-cause exploration (DataPrismGRD,
// Algorithm 1), group-testing exploration over the PVT-dependency graph
// (DataPrismGT, Algorithms 2–3), the Make-Minimal post-pass, and the
// decision-tree extension for interacting PVTs (Appendix B, Algorithm 5).
//
// Given a black-box system, a passing and a failing dataset, and a
// malfunction threshold τ, the algorithms return a minimal explanation: a
// set of PVT triplets whose composed transformations bring the failing
// dataset's malfunction score below τ (Definitions 10–11).
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/transform"
)

// PVT is a Profile-Violation-Transformation triplet: the profile carries its
// violation function, and Transforms holds the candidate intervention
// mechanisms (possibly several, per Figure 1).
type PVT struct {
	Profile    profile.Profile
	Transforms []transform.Transformation
}

// Attributes returns the attributes the PVT's profile is defined over.
func (p *PVT) Attributes() []string { return p.Profile.Attributes() }

// String renders the PVT by its profile, matching the paper's shorthand.
func (p *PVT) String() string { return p.Profile.String() }

// BuildPVTs pairs each profile with its transformations, dropping profiles
// that have no registered intervention mechanism.
func BuildPVTs(profiles []profile.Profile) []*PVT {
	var out []*PVT
	for _, p := range profiles {
		ts := transform.ForProfile(p)
		if len(ts) == 0 {
			continue
		}
		out = append(out, &PVT{Profile: p, Transforms: ts})
	}
	return out
}

// DiscoverPVTs returns the discriminative PVTs between a passing and a
// failing dataset (Algorithm 1, lines 1–4): profiles discovered on the
// passing dataset whose violation on the failing dataset exceeds eps,
// paired with their transformations.
func DiscoverPVTs(pass, fail *dataset.Dataset, opts profile.Options, eps float64) []*PVT {
	return BuildPVTs(profile.Discriminative(pass, fail, opts, eps))
}

// Benefit is the likelihood proxy of Section 4.2: the product of the PVT's
// violation score on d and the coverage of its transformation (the largest
// coverage among its candidate transformations).
func Benefit(p *PVT, d *dataset.Dataset) float64 {
	v := p.Profile.Violation(d)
	if v == 0 {
		return 0
	}
	return v * maxCoverage(p.Transforms, d)
}

// benefitCached is Benefit with the coverage term served from a per-search
// cache (see coverageCache); a nil cache falls back to direct computation.
func benefitCached(p *PVT, d *dataset.Dataset, cov *coverageCache) float64 {
	if cov == nil {
		return Benefit(p, d)
	}
	v := p.Profile.Violation(d)
	if v == 0 {
		return 0
	}
	return v * cov.maxCoverage(p, d)
}

// buildGraph constructs the PVT-attribute bipartite graph for a PVT slice.
func buildGraph(pvts []*PVT) *graph.PVTAttr {
	attrs := make([][]string, len(pvts))
	for i, p := range pvts {
		attrs[i] = p.Attributes()
	}
	return graph.NewPVTAttr(attrs)
}

// orderTransforms returns the PVT's transformations sorted so those
// modifying higher-degree attributes (in the current PVT-attribute graph)
// come first — the graph-guided choice of which side of an Indep profile to
// intervene on (Observation O1).
func orderTransforms(p *PVT, g *graph.PVTAttr) []transform.Transformation {
	type scored struct {
		t      transform.Transformation
		degree int
		pos    int
	}
	list := make([]scored, len(p.Transforms))
	for i, t := range p.Transforms {
		deg := 0
		for _, a := range t.Modifies() {
			if d := g.AttrDegree(a); d > deg {
				deg = d
			}
		}
		list[i] = scored{t: t, degree: deg, pos: i}
	}
	sort.SliceStable(list, func(i, j int) bool { return list[i].degree > list[j].degree })
	out := make([]transform.Transformation, len(list))
	for i, s := range list {
		out[i] = s.t
	}
	return out
}

// inPlaceTransformation is an optional fast path: transformations that can
// mutate a dataset the caller owns, letting group interventions over very
// large PVT sets apply with a single clone instead of one clone per PVT.
type inPlaceTransformation interface {
	transform.Transformation
	ApplyInPlace(d *dataset.Dataset) error
}

// applyPVT applies a PVT's best applicable transformation to d (trying the
// candidates in the given order), returning the transformed dataset and the
// transformation used. It fails only if every candidate errors.
func applyPVT(d *dataset.Dataset, ts []transform.Transformation, rng *rand.Rand) (*dataset.Dataset, transform.Transformation, error) {
	var firstErr error
	for _, t := range ts {
		out, err := t.Apply(d, rng)
		if err == nil {
			return out, t, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, nil, fmt.Errorf("core: no applicable transformation: %w", firstErr)
}

// applyPVTOwned is applyPVT for a dataset the caller owns: in-place-capable
// transformations mutate it directly and return it, others go through the
// cloning Apply. The returned dataset replaces the caller's ownership.
func applyPVTOwned(owned *dataset.Dataset, ts []transform.Transformation, rng *rand.Rand) (*dataset.Dataset, transform.Transformation, error) {
	var firstErr error
	for _, t := range ts {
		if ip, ok := t.(inPlaceTransformation); ok {
			if err := ip.ApplyInPlace(owned); err == nil {
				return owned, t, nil
			} else if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out, err := t.Apply(owned, rng)
		if err == nil {
			return out, t, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return owned, nil, fmt.Errorf("core: no applicable transformation: %w", firstErr)
}

// composeAll applies one transformation per PVT in slice order (the ◦
// composition of Definition 9), skipping PVTs whose transformations all
// fail on the current dataset. d itself is never mutated: the composition
// works on a single clone, using the in-place fast path where available.
func composeAll(d *dataset.Dataset, pvts []*PVT, chosen map[*PVT]transform.Transformation, rng *rand.Rand) *dataset.Dataset {
	cur := d.Clone()
	for _, p := range pvts {
		ts := p.Transforms
		if chosen != nil {
			if t, ok := chosen[p]; ok && t != nil {
				ts = []transform.Transformation{t}
			}
		}
		next, _, err := applyPVTOwned(cur, ts, rng)
		if err != nil {
			continue
		}
		cur = next
	}
	return cur
}

// pvtSetString renders an explanation set for reports.
func pvtSetString(pvts []*PVT) string {
	parts := make([]string, len(pvts))
	for i, p := range pvts {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
