// Package synth builds the synthetic pipelines of the paper's Section 5.2
// and Appendix D: systems whose malfunction is a deterministic function of
// which ground-truth profile violations remain in the dataset, plus
// generators that control the number of attributes, the number of
// discriminative PVTs, and the structure (conjunctive / disjunctive) of the
// root cause.
//
// A synthetic scenario encodes each candidate PVT as one slot of a "flag"
// column: flag[i] = 1 means PVT i's profile is currently violated, and the
// PVT's transformation clears the flag. This gives exact control over
// benefit scores, attribute-sharing structure, and the system's response,
// while exercising the real intervention algorithms end to end.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/transform"
)

// FlagColumn is the reserved attribute holding the violation flags.
const FlagColumn = "__synth_flags__"

// Profile is a synthetic profile: violated iff its flag slot is 1.
type Profile struct {
	// Index is the flag slot the profile reads.
	Index int
	// Attrs are the attributes the profile claims to be defined over,
	// controlling the PVT-attribute graph structure.
	Attrs []string
	// Cov is the coverage its transformation reports, controlling the
	// benefit score (violation is always 0 or 1).
	Cov float64
}

// Type implements profile.Profile.
func (p *Profile) Type() string { return "synth" }

// Attributes implements profile.Profile.
func (p *Profile) Attributes() []string { return p.Attrs }

// Key implements profile.Profile.
func (p *Profile) Key() string { return fmt.Sprintf("synth:%d", p.Index) }

// Violation implements profile.Profile: the flag value in [0,1].
func (p *Profile) Violation(d *dataset.Dataset) float64 {
	c := d.Column(FlagColumn)
	if c == nil || p.Index >= c.Len() {
		return 0
	}
	return c.NumAt(p.Index)
}

// SameParams implements profile.Profile.
func (p *Profile) SameParams(other profile.Profile) bool {
	o, ok := other.(*Profile)
	return ok && o.Index == p.Index
}

func (p *Profile) String() string { return fmt.Sprintf("⟨Synth, X%d⟩", p.Index+1) }

// Transform clears the profile's flag — the synthetic intervention.
type Transform struct {
	P *Profile
}

// Name implements transform.Transformation.
func (t *Transform) Name() string { return fmt.Sprintf("clear-flag-%d", t.P.Index) }

// Target implements transform.Transformation.
func (t *Transform) Target() profile.Profile { return t.P }

// Modifies implements transform.Transformation.
func (t *Transform) Modifies() []string { return t.P.Attrs }

// Apply implements transform.Transformation.
func (t *Transform) Apply(d *dataset.Dataset, _ *rand.Rand) (*dataset.Dataset, error) {
	c := d.Column(FlagColumn)
	if c == nil || t.P.Index >= c.Len() {
		return nil, fmt.Errorf("synth: dataset has no flag slot %d", t.P.Index)
	}
	out := d.Clone()
	out.SetNum(FlagColumn, t.P.Index, 0)
	return out, nil
}

// ApplyInPlace implements core's in-place fast path: clearing a flag slot
// without cloning, so group interventions over hundreds of thousands of
// PVTs stay linear instead of quadratic.
func (t *Transform) ApplyInPlace(d *dataset.Dataset) error {
	if c := d.Column(FlagColumn); c == nil || t.P.Index >= c.Len() {
		return fmt.Errorf("synth: dataset has no flag slot %d", t.P.Index)
	}
	d.SetNum(FlagColumn, t.P.Index, 0)
	return nil
}

// Coverage implements transform.Transformation: the configured coverage
// while the profile is violated, zero otherwise.
func (t *Transform) Coverage(d *dataset.Dataset) float64 {
	if t.P.Violation(d) > 0 {
		return t.P.Cov
	}
	return 0
}

// Scenario is a fully-specified synthetic debugging problem.
type Scenario struct {
	// PVTs are the discriminative candidates handed to the algorithms.
	PVTs []*core.PVT
	// Fail is the failing dataset (all candidate flags raised).
	Fail *dataset.Dataset
	// System scores datasets by the remaining ground-truth violations.
	System pipeline.System
	// GroundTruth is the DNF root cause: the malfunction clears when every
	// PVT of at least one disjunct is repaired.
	GroundTruth [][]int
}

// FailingDataset builds a flag dataset with all k flags raised.
func FailingDataset(k int) *dataset.Dataset {
	flags := make([]float64, k)
	for i := range flags {
		flags[i] = 1
	}
	d := dataset.New()
	d.MustAddNumeric(FlagColumn, flags)
	return d
}

// DNFSystem scores a dataset as the minimum over disjuncts of the mean
// remaining violation of the disjunct's PVTs. The score is 0 exactly when
// some disjunct is fully repaired; repairing any ground-truth PVT strictly
// reduces its disjunct's mean, satisfying assumption A2, and for singleton
// disjuncts assumption A3 as well.
type DNFSystem struct {
	Label     string
	Disjuncts [][]int
	Profiles  []*Profile
}

// Name implements pipeline.System.
func (s *DNFSystem) Name() string { return s.Label }

// MalfunctionScore implements pipeline.System.
func (s *DNFSystem) MalfunctionScore(d *dataset.Dataset) float64 {
	best := 1.0
	for _, conj := range s.Disjuncts {
		if len(conj) == 0 {
			continue
		}
		sum := 0.0
		for _, idx := range conj {
			sum += s.Profiles[idx].Violation(d)
		}
		if m := sum / float64(len(conj)); m < best {
			best = m
		}
	}
	return best
}

// Options configures scenario generation.
type Options struct {
	// NumPVTs is the number of discriminative candidates.
	NumPVTs int
	// NumAttrs is the attribute pool size; PVT i claims attribute
	// "a<i mod NumAttrs>", so PVTs sharing an attribute form clusters.
	NumAttrs int
	// Conjunction is the size of the (single) conjunctive root cause;
	// ignored when Disjunction > 0. Minimum 1.
	Conjunction int
	// Disjunction, when positive, builds that many singleton disjuncts as
	// alternative root causes.
	Disjunction int
	// Seed drives coverage assignment and cause placement.
	Seed int64
	// CauseCoverageRank, when positive, forces the (single, conjunction-1)
	// cause's benefit to rank exactly this low among all PVTs — the
	// adversarial scenario of Section 5.2 where GRD needs rank-many
	// interventions. Requires Conjunction == 1 and Disjunction == 0.
	CauseCoverageRank int
	// CauseTopBenefit gives every ground-truth PVT the maximum coverage,
	// making observations O1–O3 hold — the regime of the paper's Figure 8/9
	// scalability sweeps.
	CauseTopBenefit bool
}

// New generates a synthetic scenario.
func New(opts Options) *Scenario {
	if opts.NumPVTs <= 0 {
		opts.NumPVTs = 16
	}
	if opts.NumAttrs <= 0 {
		opts.NumAttrs = 4
	}
	if opts.Conjunction <= 0 {
		opts.Conjunction = 1
	}
	rng := rand.New(rand.NewSource(opts.Seed + 77))

	profiles := make([]*Profile, opts.NumPVTs)
	for i := range profiles {
		profiles[i] = &Profile{
			Index: i,
			Attrs: []string{fmt.Sprintf("a%d", i%opts.NumAttrs)},
			Cov:   0.05 + 0.9*rng.Float64(),
		}
	}

	// Choose the ground-truth cause.
	var disjuncts [][]int
	switch {
	case opts.Disjunction > 0:
		perm := rng.Perm(opts.NumPVTs)
		for i := 0; i < opts.Disjunction && i < opts.NumPVTs; i++ {
			disjuncts = append(disjuncts, []int{perm[i]})
		}
	default:
		perm := rng.Perm(opts.NumPVTs)
		conj := append([]int(nil), perm[:min(opts.Conjunction, opts.NumPVTs)]...)
		disjuncts = [][]int{conj}
	}

	if opts.CauseCoverageRank > 0 && len(disjuncts) == 1 && len(disjuncts[0]) == 1 {
		// Force the cause's benefit to rank exactly CauseCoverageRank:
		// give every PVT a distinct coverage and place the cause at the
		// requested position from the top.
		rank := opts.CauseCoverageRank
		if rank > opts.NumPVTs {
			rank = opts.NumPVTs
		}
		cause := disjuncts[0][0]
		// Descending coverage by a permutation with the cause pinned.
		order := make([]int, 0, opts.NumPVTs)
		for _, p := range rng.Perm(opts.NumPVTs) {
			if p != cause {
				order = append(order, p)
			}
		}
		// Insert cause at position rank-1 (0-based) in the descending order.
		order = append(order[:rank-1], append([]int{cause}, order[rank-1:]...)...)
		for pos, idx := range order {
			profiles[idx].Cov = 1 - float64(pos)/float64(opts.NumPVTs+1)
		}
		// All PVTs share one attribute so the graph filter keeps them all
		// candidates and ordering is purely benefit-driven.
		for _, p := range profiles {
			p.Attrs = []string{"a0"}
		}
	}

	if opts.CauseTopBenefit {
		for _, conj := range disjuncts {
			for _, idx := range conj {
				profiles[idx].Cov = 1
			}
		}
	}

	pvts := make([]*core.PVT, opts.NumPVTs)
	for i, p := range profiles {
		pvts[i] = &core.PVT{
			Profile:    p,
			Transforms: []transform.Transformation{&Transform{P: p}},
		}
	}
	return &Scenario{
		PVTs:        pvts,
		Fail:        FailingDataset(opts.NumPVTs),
		System:      &DNFSystem{Label: "synthetic-dnf", Disjuncts: disjuncts, Profiles: profiles},
		GroundTruth: disjuncts,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Figure6Scenario reproduces the toy example of Figure 6: eight PVTs whose
// dependency graph is the perfect matching {X1,X2},{X3,X4},{X5,X7},{X6,X8}
// and whose ground-truth explanation is {X1,X6} ∨ {X4,X8}.
func Figure6Scenario() *Scenario {
	attrs := [][]string{
		{"a1"}, {"a1"}, // X1, X2
		{"a2"}, {"a2"}, // X3, X4
		{"a3"}, {"a4"}, // X5, X6
		{"a3"}, {"a4"}, // X7, X8
	}
	profiles := make([]*Profile, 8)
	pvts := make([]*core.PVT, 8)
	for i := range profiles {
		profiles[i] = &Profile{Index: i, Attrs: attrs[i], Cov: 0.5}
		pvts[i] = &core.PVT{
			Profile:    profiles[i],
			Transforms: []transform.Transformation{&Transform{P: profiles[i]}},
		}
	}
	disjuncts := [][]int{{0, 5}, {3, 7}} // {X1,X6} ∨ {X4,X8}
	return &Scenario{
		PVTs:        pvts,
		Fail:        FailingDataset(8),
		System:      &DNFSystem{Label: "figure6", Disjuncts: disjuncts, Profiles: profiles},
		GroundTruth: disjuncts,
	}
}
