package synth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFailingDataset(t *testing.T) {
	d := FailingDataset(5)
	if d.NumRows() != 5 {
		t.Fatalf("rows = %d", d.NumRows())
	}
	for i := 0; i < 5; i++ {
		if d.Num(FlagColumn, i) != 1 {
			t.Errorf("flag %d not raised", i)
		}
	}
}

func TestProfileViolationAndTransform(t *testing.T) {
	p := &Profile{Index: 2, Attrs: []string{"a"}, Cov: 0.7}
	d := FailingDataset(4)
	if p.Violation(d) != 1 {
		t.Error("raised flag should violate")
	}
	tr := &Transform{P: p}
	if tr.Coverage(d) != 0.7 {
		t.Errorf("Coverage = %g", tr.Coverage(d))
	}
	out, err := tr.Apply(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Violation(out) != 0 {
		t.Error("transform did not clear the flag")
	}
	if p.Violation(d) != 1 {
		t.Error("Apply mutated the input")
	}
	if tr.Coverage(out) != 0 {
		t.Error("cleared flag should report zero coverage")
	}
	// Out-of-range slot errors.
	bad := &Transform{P: &Profile{Index: 99}}
	if _, err := bad.Apply(d, nil); err == nil {
		t.Error("out-of-range flag should error")
	}
}

func TestApplyInPlace(t *testing.T) {
	p := &Profile{Index: 1, Attrs: []string{"a"}}
	tr := &Transform{P: p}
	d := FailingDataset(3)
	if err := tr.ApplyInPlace(d); err != nil {
		t.Fatal(err)
	}
	if p.Violation(d) != 0 {
		t.Error("ApplyInPlace should clear the flag in the given dataset")
	}
	if err := (&Transform{P: &Profile{Index: 9}}).ApplyInPlace(d); err == nil {
		t.Error("out-of-range in-place should error")
	}
}

func TestDNFSystemSemantics(t *testing.T) {
	profiles := []*Profile{
		{Index: 0}, {Index: 1}, {Index: 2}, {Index: 3},
	}
	sys := &DNFSystem{Label: "s", Disjuncts: [][]int{{0, 1}, {2}}, Profiles: profiles}
	d := FailingDataset(4)
	if got := sys.MalfunctionScore(d); got != 1 {
		t.Errorf("all violated score = %g, want 1", got)
	}
	// Fixing half of a conjunct reduces its mean (assumption A2).
	d2 := d.Clone()
	d2.SetNum(FlagColumn, 0, 0)
	if got := sys.MalfunctionScore(d2); got != 0.5 {
		t.Errorf("half-fixed conjunct = %g, want 0.5", got)
	}
	// Fixing a singleton disjunct clears the malfunction entirely.
	d3 := d.Clone()
	d3.SetNum(FlagColumn, 2, 0)
	if got := sys.MalfunctionScore(d3); got != 0 {
		t.Errorf("fixed singleton disjunct = %g, want 0", got)
	}
	if sys.Name() != "s" {
		t.Error("Name")
	}
}

func TestNewScenarioShape(t *testing.T) {
	sc := New(Options{NumPVTs: 30, NumAttrs: 6, Conjunction: 2, Seed: 3})
	if len(sc.PVTs) != 30 || sc.Fail.NumRows() != 30 {
		t.Fatalf("shape wrong: %d pvts, %d rows", len(sc.PVTs), sc.Fail.NumRows())
	}
	if len(sc.GroundTruth) != 1 || len(sc.GroundTruth[0]) != 2 {
		t.Fatalf("ground truth = %v", sc.GroundTruth)
	}
	if sc.System.MalfunctionScore(sc.Fail) != 1 {
		t.Error("failing dataset should score 1")
	}
	// Defaults apply.
	def := New(Options{})
	if len(def.PVTs) != 16 {
		t.Errorf("default NumPVTs = %d", len(def.PVTs))
	}
}

func TestNewScenarioDisjunction(t *testing.T) {
	sc := New(Options{NumPVTs: 20, NumAttrs: 4, Disjunction: 3, Seed: 5})
	if len(sc.GroundTruth) != 3 {
		t.Fatalf("disjuncts = %d", len(sc.GroundTruth))
	}
	for _, disj := range sc.GroundTruth {
		if len(disj) != 1 {
			t.Errorf("disjunct size = %d, want 1", len(disj))
		}
	}
}

func TestCauseCoverageRank(t *testing.T) {
	for _, rank := range []int{1, 10, 54} {
		sc := New(Options{NumPVTs: 60, NumAttrs: 1, Conjunction: 1, Seed: 7, CauseCoverageRank: rank})
		cause := sc.GroundTruth[0][0]
		causeCov := sc.PVTs[cause].Profile.(*Profile).Cov
		higher := 0
		for i, p := range sc.PVTs {
			if i != cause && p.Profile.(*Profile).Cov > causeCov {
				higher++
			}
		}
		if higher != rank-1 {
			t.Errorf("rank %d: %d PVTs have higher coverage, want %d", rank, higher, rank-1)
		}
	}
}

func TestCauseTopBenefit(t *testing.T) {
	sc := New(Options{NumPVTs: 40, NumAttrs: 8, Conjunction: 3, Seed: 9, CauseTopBenefit: true})
	for _, idx := range sc.GroundTruth[0] {
		if cov := sc.PVTs[idx].Profile.(*Profile).Cov; cov != 1 {
			t.Errorf("cause X%d coverage = %g, want 1", idx+1, cov)
		}
	}
}

func TestFigure6ScenarioStructure(t *testing.T) {
	sc := Figure6Scenario()
	if len(sc.PVTs) != 8 {
		t.Fatalf("pvts = %d", len(sc.PVTs))
	}
	// Ground truth {X1,X6} ∨ {X4,X8} (0-indexed {0,5}, {3,7}).
	if sc.GroundTruth[0][0] != 0 || sc.GroundTruth[0][1] != 5 {
		t.Errorf("first disjunct = %v", sc.GroundTruth[0])
	}
	// Fixing {X4, X8} clears the malfunction.
	d := sc.Fail.Clone()
	d.SetNum(FlagColumn, 3, 0)
	d.SetNum(FlagColumn, 7, 0)
	if sc.System.MalfunctionScore(d) != 0 {
		t.Error("fixing the second disjunct should clear the malfunction")
	}
}

// Property: scenario generation is deterministic per seed and the system
// score is always within [0, 1].
func TestScenarioProperties(t *testing.T) {
	f := func(seed int64) bool {
		a := New(Options{NumPVTs: 12, NumAttrs: 3, Conjunction: 2, Seed: seed})
		b := New(Options{NumPVTs: 12, NumAttrs: 3, Conjunction: 2, Seed: seed})
		if len(a.GroundTruth[0]) != len(b.GroundTruth[0]) {
			return false
		}
		for i := range a.GroundTruth[0] {
			if a.GroundTruth[0][i] != b.GroundTruth[0][i] {
				return false
			}
		}
		// Random partial repairs keep the score in [0,1].
		rng := rand.New(rand.NewSource(seed))
		d := a.Fail.Clone()
		for i := 0; i < 12; i++ {
			if rng.Float64() < 0.5 {
				d.SetNum(FlagColumn, i, 0)
			}
		}
		s := a.System.MalfunctionScore(d)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
