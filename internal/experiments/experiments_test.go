package experiments

import (
	"testing"
)

func TestFigure7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("case studies are slow")
	}
	rows := Figure7(1200, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.FailScore <= row.PassScore {
			t.Errorf("%s: fail score %g not above pass score %g", row.Scenario, row.FailScore, row.PassScore)
		}
		if row.Discriminative == 0 {
			t.Errorf("%s: no discriminative PVTs", row.Scenario)
		}
		grd, gt, bugdoc, anchor, grptest := row.Cells[0], row.Cells[1], row.Cells[2], row.Cells[3], row.Cells[4]
		if grd.NA {
			t.Errorf("%s: GRD must not be NA", row.Scenario)
			continue
		}
		// The paper's headline orderings.
		if !gt.NA && gt.Interventions < grd.Interventions {
			// GT may tie or slightly beat GRD when the search is lucky; no
			// assertion needed — just sanity check positivity.
			if gt.Interventions <= 0 {
				t.Errorf("%s: GT interventions = %d", row.Scenario, gt.Interventions)
			}
		}
		if !anchor.NA && !bugdoc.NA && anchor.Interventions < bugdoc.Interventions {
			t.Errorf("%s: Anchor (%d) beat BugDoc (%d)", row.Scenario, anchor.Interventions, bugdoc.Interventions)
		}
		if !anchor.NA && anchor.Interventions < 5*grd.Interventions {
			t.Errorf("%s: Anchor (%d) not an order of magnitude above GRD (%d)",
				row.Scenario, anchor.Interventions, grd.Interventions)
		}
		_ = bugdoc
		_ = grptest
	}
}

func TestFigure8Sublinear(t *testing.T) {
	pts := Figure8PVTs([]int{100, 10000}, 1)
	if len(pts) != 2 {
		t.Fatal("sweep incomplete")
	}
	for _, p := range pts {
		for i, v := range p.Values {
			if v < 0 {
				t.Errorf("k=%d series %d failed", p.X, i)
			}
		}
	}
	// 100× the PVTs must cost far less than 100× the time (sub-linearity
	// would be <100×; we assert a generous 300× to avoid timer flakiness).
	if pts[1].Values[0] > 300*pts[0].Values[0]+0.5 {
		t.Errorf("GRD time grew superlinearly: %v vs %v", pts[1].Values[0], pts[0].Values[0])
	}
}

func TestFigure9SeriesShapes(t *testing.T) {
	pts := Figure9PVTs([]int{10, 80}, 2)
	if len(pts) != 2 {
		t.Fatal("incomplete")
	}
	grdSmall, grdBig := pts[0].Values[0], pts[1].Values[0]
	gtSmall, gtBig := pts[0].Values[1], pts[1].Values[1]
	anchorBig := pts[1].Values[3]
	// GRD stays flat and small; GT grows but stays logarithmic; Anchor is
	// orders of magnitude above both.
	if grdBig > 10 {
		t.Errorf("GRD at 80 PVTs = %g, want < 10 (paper Figure 9b)", grdBig)
	}
	if gtBig <= gtSmall {
		t.Errorf("GT should grow with |X|: %g vs %g", gtBig, gtSmall)
	}
	if gtBig > 20 {
		t.Errorf("GT at 80 PVTs = %g, want logarithmic", gtBig)
	}
	if anchorBig < 10*grdBig {
		t.Errorf("Anchor (%g) should dwarf GRD (%g)", anchorBig, grdBig)
	}
	_ = grdSmall
}

func TestGRDvsGTAdversarialExact(t *testing.T) {
	grd, gt, err := GRDvsGTAdversarial(7)
	if err != nil {
		t.Fatal(err)
	}
	if grd != 54 {
		t.Errorf("GRD = %d, want the paper's exact 54", grd)
	}
	if gt >= 20 {
		t.Errorf("GT = %d, want logarithmic (paper: 9)", gt)
	}
}

func TestFigure6Completes(t *testing.T) {
	gt, rnd, err := Figure6(6)
	if err != nil {
		t.Fatal(err)
	}
	if gt <= 0 || rnd <= 0 {
		t.Errorf("averages = %g, %g", gt, rnd)
	}
}

func TestAblations(t *testing.T) {
	counts, err := AblationBenefit(3)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 {
		t.Errorf("full benefit with top-ranked cause = %d interventions, want 1", counts[0])
	}
	if counts[3] <= counts[0] {
		t.Errorf("random ordering (%d) should cost more than full benefit (%d)", counts[3], counts[0])
	}

	withGraph, withoutGraph, err := AblationDegree(6)
	if err != nil {
		t.Fatal(err)
	}
	if withGraph >= withoutGraph {
		t.Errorf("graph priority (%g) should beat no-graph (%g)", withGraph, withoutGraph)
	}

	minBis, randBis, err := AblationBisection(10)
	if err != nil {
		t.Fatal(err)
	}
	if minBis > randBis {
		t.Errorf("min-bisection (%g) should not lose to random (%g) on the aligned scenario", minBis, randBis)
	}
}
