// Package experiments is the reproduction harness for every table and
// figure of the paper's evaluation (Section 5 and Appendix D). Each
// function regenerates one artifact — the same rows or series the paper
// reports — over this repository's substrates. See EXPERIMENTS.md for the
// paper-vs-measured record.
package experiments

import (
	"errors"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/transform"
	"repro/internal/workload"
)

// Technique names, in the paper's column order (Figure 7).
var Techniques = []string{"DataPrismGRD", "DataPrismGT", "BugDoc", "Anchor", "GrpTest"}

// Cell is one technique's outcome on one scenario.
type Cell struct {
	Interventions int
	Seconds       float64
	// NA marks that the technique could not identify the cause (the
	// paper's "NA" entries, e.g. group testing under a violated A3).
	NA bool
}

// Row is one scenario's outcomes across all techniques, keyed in
// Techniques order.
type Row struct {
	Scenario string
	Cells    []Cell
	// PassScore / FailScore document the scenario instance.
	PassScore, FailScore float64
	Discriminative       int
}

// scenario bundles what every technique needs.
type scenario struct {
	name       string
	pass, fail *dataset.Dataset
	system     pipeline.System
	tau        float64
	opts       profile.Options
}

func caseStudy(name string, rows int, seed int64) scenario {
	switch name {
	case "Sentiment":
		s := workload.NewSentimentScenario(rows, seed)
		return scenario{name, s.Pass, s.Fail, s.System, s.Tau, s.Options}
	case "Income":
		s := workload.NewIncomeScenario(rows, seed)
		return scenario{name, s.Pass, s.Fail, s.System, s.Tau, s.Options}
	case "Cardiovascular":
		s := workload.NewCardioScenario(rows, seed)
		return scenario{name, s.Pass, s.Fail, s.System, s.Tau, s.Options}
	default:
		panic("unknown case study " + name)
	}
}

// runAll executes the five techniques on pre-discovered PVTs.
func runAll(sys pipeline.System, tau float64, seed int64, pvts []*core.PVT, fail *dataset.Dataset) []Cell {
	cells := make([]Cell, len(Techniques))
	run := func(i int, f func() (*core.Result, error)) {
		start := time.Now()
		res, err := f()
		secs := time.Since(start).Seconds()
		switch {
		case err == nil:
			cells[i] = Cell{Interventions: res.Interventions, Seconds: secs}
		case errors.Is(err, core.ErrNoExplanation):
			cells[i] = Cell{Interventions: res.Interventions, Seconds: secs, NA: true}
		default:
			cells[i] = Cell{NA: true, Seconds: secs}
		}
	}
	run(0, func() (*core.Result, error) {
		e := &core.Explainer{System: sys, Tau: tau, Seed: seed}
		return e.ExplainGreedyPVTs(pvts, fail)
	})
	run(1, func() (*core.Result, error) {
		e := &core.Explainer{System: sys, Tau: tau, Seed: seed}
		return e.ExplainGroupTestPVTs(pvts, fail)
	})
	cfg := baselines.Config{System: sys, Tau: tau, Seed: seed}
	run(2, func() (*core.Result, error) { return baselines.BugDoc(cfg, pvts, fail) })
	run(3, func() (*core.Result, error) { return baselines.Anchor(cfg, pvts, fail) })
	run(4, func() (*core.Result, error) { return baselines.GrpTest(cfg, pvts, fail) })
	return cells
}

// Figure7 regenerates the case-study comparison table: interventions and
// runtime for the five techniques on the three case studies.
func Figure7(rows int, seed int64) []Row {
	var out []Row
	for _, name := range []string{"Sentiment", "Income", "Cardiovascular"} {
		sc := caseStudy(name, rows, seed)
		pvts := core.DiscoverPVTs(sc.pass, sc.fail, sc.opts, 1e-9)
		row := Row{
			Scenario:       name,
			PassScore:      sc.system.MalfunctionScore(sc.pass),
			FailScore:      sc.system.MalfunctionScore(sc.fail),
			Discriminative: len(pvts),
			Cells:          runAll(sc.system, sc.tau, seed, pvts, sc.fail),
		}
		out = append(out, row)
	}
	return out
}

// Point is one (x, series values) sample of a figure.
type Point struct {
	X      int
	Values []float64 // keyed by the figure's series
}

// Figure8Attributes regenerates Figure 8 (left): runtime of GRD and GT as
// the number of attributes grows (PVT count scales 8× the attributes).
// Series: [GRD seconds, GT seconds].
func Figure8Attributes(attrCounts []int, seed int64) []Point {
	var out []Point
	for _, attrs := range attrCounts {
		sc := synth.New(synth.Options{
			NumPVTs:         8 * attrs,
			NumAttrs:        attrs,
			Conjunction:     1,
			Seed:            seed,
			CauseTopBenefit: true,
		})
		out = append(out, Point{X: attrs, Values: timeGRDGT(sc, seed)})
	}
	return out
}

// Figure8PVTs regenerates Figure 8 (right): runtime of GRD and GT as the
// number of discriminative PVTs grows. Each PVT has a distinct attribute,
// matching the sweep's independence of the attribute axis.
// Series: [GRD seconds, GT seconds].
func Figure8PVTs(pvtCounts []int, seed int64) []Point {
	var out []Point
	for _, k := range pvtCounts {
		sc := synth.New(synth.Options{
			NumPVTs:         k,
			NumAttrs:        k,
			Conjunction:     1,
			Seed:            seed,
			CauseTopBenefit: true,
		})
		out = append(out, Point{X: k, Values: timeGRDGT(sc, seed)})
	}
	return out
}

func timeGRDGT(sc *synth.Scenario, seed int64) []float64 {
	grd := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed}
	start := time.Now()
	if _, err := grd.ExplainGreedyPVTs(sc.PVTs, sc.Fail); err != nil {
		return []float64{-1, -1}
	}
	grdSecs := time.Since(start).Seconds()

	gt := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed}
	start = time.Now()
	if _, err := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail); err != nil {
		return []float64{grdSecs, -1}
	}
	return []float64{grdSecs, time.Since(start).Seconds()}
}

// avgInterventions runs all five techniques over several seeds and returns
// mean intervention counts in Techniques order (NA runs score the budget).
func avgInterventions(build func(seed int64) *synth.Scenario, seeds int, tau float64) []float64 {
	sums := make([]float64, len(Techniques))
	for s := 0; s < seeds; s++ {
		sc := build(int64(s))
		cells := runAll(sc.System, tau, int64(s), sc.PVTs, sc.Fail)
		for i, c := range cells {
			sums[i] += float64(c.Interventions)
		}
	}
	for i := range sums {
		sums[i] /= float64(seeds)
	}
	return sums
}

// Figure9Attributes regenerates Figure 9(a): average interventions of the
// five techniques as the number of attributes grows (single root cause).
func Figure9Attributes(attrCounts []int, seeds int) []Point {
	var out []Point
	for _, attrs := range attrCounts {
		a := attrs
		vals := avgInterventions(func(seed int64) *synth.Scenario {
			return synth.New(synth.Options{
				NumPVTs:         8 * a,
				NumAttrs:        a,
				Conjunction:     1,
				Seed:            seed,
				CauseTopBenefit: true,
			})
		}, seeds, 0.05)
		out = append(out, Point{X: attrs, Values: vals})
	}
	return out
}

// Figure9PVTs regenerates Figure 9(b): average interventions as the number
// of discriminative PVTs grows, 15 attributes fixed.
func Figure9PVTs(pvtCounts []int, seeds int) []Point {
	var out []Point
	for _, k := range pvtCounts {
		kk := k
		vals := avgInterventions(func(seed int64) *synth.Scenario {
			return synth.New(synth.Options{
				NumPVTs:         kk,
				NumAttrs:        15,
				Conjunction:     1,
				Seed:            seed,
				CauseTopBenefit: true,
			})
		}, seeds, 0.05)
		out = append(out, Point{X: k, Values: vals})
	}
	return out
}

// Figure9Conjunction regenerates Figure 9(c): average interventions as the
// size of a single conjunctive root cause grows (15 attributes, 136 PVTs).
func Figure9Conjunction(sizes []int, seeds int) []Point {
	var out []Point
	for _, size := range sizes {
		sz := size
		vals := avgInterventions(func(seed int64) *synth.Scenario {
			return synth.New(synth.Options{
				NumPVTs:         136,
				NumAttrs:        15,
				Conjunction:     sz,
				Seed:            seed,
				CauseTopBenefit: true,
			})
		}, seeds, 0.05)
		out = append(out, Point{X: size, Values: vals})
	}
	return out
}

// Figure9Disjunction regenerates Figure 9(d): average interventions as the
// number of disjunctive root causes grows (15 attributes, 136 PVTs).
func Figure9Disjunction(sizes []int, seeds int) []Point {
	var out []Point
	for _, size := range sizes {
		sz := size
		vals := avgInterventions(func(seed int64) *synth.Scenario {
			return synth.New(synth.Options{
				NumPVTs:         136,
				NumAttrs:        15,
				Disjunction:     sz,
				Seed:            seed,
				CauseTopBenefit: true,
			})
		}, seeds, 0.05)
		out = append(out, Point{X: size, Values: vals})
	}
	return out
}

// GRDvsGTAdversarial regenerates the Section 5.2 comparison: the true
// cause's benefit ranks 54th among 60 discriminative PVTs, so GRD needs 54
// interventions while GT stays logarithmic. Returns (GRD, GT) interventions.
func GRDvsGTAdversarial(seed int64) (grd, gt int, err error) {
	sc := synth.New(synth.Options{
		NumPVTs:           60,
		NumAttrs:          1,
		Conjunction:       1,
		Seed:              seed,
		CauseCoverageRank: 54,
	})
	eg := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed}
	rg, err := eg.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		return 0, 0, err
	}
	et := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed}
	rt, err := et.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
	if err != nil {
		return rg.Interventions, 0, err
	}
	return rg.Interventions, rt.Interventions, nil
}

// Figure6 regenerates the toy comparison of Figure 6: interventions of
// DataPrismGT vs traditional adaptive group testing on the 8-PVT example,
// averaged over seeds.
func Figure6(seeds int) (gtAvg, randAvg float64, err error) {
	var gtSum, randSum int
	for s := 0; s < seeds; s++ {
		sc := synth.Figure6Scenario()
		gt := &core.Explainer{System: sc.System, Tau: 0.05, Seed: int64(s)}
		r1, e1 := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		if e1 != nil {
			return 0, 0, e1
		}
		gtSum += r1.Interventions

		sc2 := synth.Figure6Scenario()
		rnd := &core.Explainer{System: sc2.System, Tau: 0.05, Seed: int64(s), RandomBisection: true}
		r2, e2 := rnd.ExplainGroupTestPVTs(sc2.PVTs, sc2.Fail)
		if e2 != nil {
			return 0, 0, e2
		}
		randSum += r2.Interventions
	}
	return float64(gtSum) / float64(seeds), float64(randSum) / float64(seeds), nil
}

// AblationBenefit compares intervention counts of the greedy search under
// the four benefit modes on a scenario where the cause has top coverage.
// Returns counts keyed by [full, violation-only, coverage-only, random].
func AblationBenefit(seed int64) ([]int, error) {
	sc := synth.New(synth.Options{
		NumPVTs: 40, NumAttrs: 1, Conjunction: 1, Seed: seed, CauseCoverageRank: 1,
	})
	modes := []core.BenefitMode{core.BenefitFull, core.BenefitViolationOnly, core.BenefitCoverageOnly, core.BenefitRandom}
	out := make([]int, len(modes))
	for i, m := range modes {
		e := &core.Explainer{System: sc.System, Tau: 0.05, Seed: seed, Benefit: m}
		res, err := e.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		if err != nil {
			return nil, err
		}
		out[i] = res.Interventions
	}
	return out, nil
}

// AblationDegree compares the greedy search with and without the
// high-degree-attribute prioritization (Observation O1) on a scenario where
// the cause's attribute carries many discriminative PVTs. Returns
// (withGraph, withoutGraph) average interventions over seeds.
func AblationDegree(seeds int) (withGraph, withoutGraph float64, err error) {
	var wg, wo int
	for s := 0; s < seeds; s++ {
		sc := degreeScenario(int64(s))
		// Both arms use random benefit so the comparison isolates the
		// graph-priority effect.
		e1 := &core.Explainer{System: sc.System, Tau: 0.05, Seed: int64(s), Benefit: core.BenefitRandom}
		r1, err1 := e1.ExplainGreedyPVTs(sc.PVTs, sc.Fail)
		if err1 != nil {
			return 0, 0, err1
		}
		wg += r1.Interventions

		sc2 := degreeScenario(int64(s))
		e2 := &core.Explainer{System: sc2.System, Tau: 0.05, Seed: int64(s), DisableGraphPriority: true, Benefit: core.BenefitRandom}
		r2, err2 := e2.ExplainGreedyPVTs(sc2.PVTs, sc2.Fail)
		if err2 != nil {
			return 0, 0, err2
		}
		wo += r2.Interventions
	}
	return float64(wg) / float64(seeds), float64(wo) / float64(seeds), nil
}

// degreeScenario puts the cause on a crowded attribute (degree structure
// informative) with uniform coverages (benefit uninformative).
func degreeScenario(seed int64) *synth.Scenario {
	sc := synth.New(synth.Options{NumPVTs: 40, NumAttrs: 20, Conjunction: 1, Seed: seed})
	cause := sc.GroundTruth[0][0]
	causeAttr := sc.PVTs[cause].Attributes()[0]
	// Crowd the cause's attribute: a third of the PVTs share it.
	for i, p := range sc.PVTs {
		sp := p.Profile.(*synth.Profile)
		sp.Cov = 0.5
		if i%3 == 0 {
			sp.Attrs = []string{causeAttr}
		}
	}
	return sc
}

// AblationBisection compares min-bisection against random bisection in the
// group-testing search on an attribute-aligned scenario: PVTs sharing an
// attribute have correlated helpfulness, the regime Section 4.4's
// graph-guided partitioning targets. Returns (minBisection,
// randomBisection) average interventions over seeds.
func AblationBisection(seeds int) (minBis, randBis float64, err error) {
	var mbSum, rbSum int
	for s := 0; s < seeds; s++ {
		sc := alignedScenario()
		gt := &core.Explainer{System: sc.System, Tau: 0.05, Seed: int64(s)}
		r1, e1 := gt.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		if e1 != nil {
			return 0, 0, e1
		}
		mbSum += r1.Interventions

		sc2 := alignedScenario()
		rnd := &core.Explainer{System: sc2.System, Tau: 0.05, Seed: int64(s), RandomBisection: true}
		r2, e2 := rnd.ExplainGroupTestPVTs(sc2.PVTs, sc2.Fail)
		if e2 != nil {
			return 0, 0, e2
		}
		rbSum += r2.Interventions
	}
	return float64(mbSum) / float64(seeds), float64(rbSum) / float64(seeds), nil
}

// alignedScenario builds 16 PVTs in attribute-sharing pairs with the
// pair {X1, X2} as a conjunctive ground truth.
func alignedScenario() *synth.Scenario {
	const k = 16
	profiles := make([]*synth.Profile, k)
	pvts := make([]*core.PVT, k)
	for i := 0; i < k; i++ {
		profiles[i] = &synth.Profile{
			Index: i,
			Attrs: []string{string(rune('a' + i/2))},
			Cov:   0.5,
		}
		pvts[i] = &core.PVT{
			Profile:    profiles[i],
			Transforms: []transform.Transformation{&synth.Transform{P: profiles[i]}},
		}
	}
	sys := &synth.DNFSystem{Label: "aligned", Disjuncts: [][]int{{0, 1}}, Profiles: profiles}
	return &synth.Scenario{PVTs: pvts, Fail: synth.FailingDataset(k), System: sys, GroundTruth: [][]int{{0, 1}}}
}
