// Package dataprism is a from-scratch Go implementation of DataPrism
// ("DataPrism: Exposing Disconnect between Data and Systems", SIGMOD 2022;
// preprint title "DataExposer"): a framework that identifies data
// profiles — domains, outlier/missing rates, selectivities, and
// (in)dependence structure — as the causally verified root causes of a
// data-driven system's malfunction, together with the transformations that
// fix them.
//
// Given a black-box System with a malfunction score, a passing dataset, a
// failing dataset, and an acceptable threshold τ, DataPrism:
//
//  1. discovers the discriminative PVT (Profile, Violation, Transformation)
//     triplets between the two datasets,
//  2. intervenes on the failing dataset — greedily (GRD) or by
//     dependency-aware group testing (GT) — re-running the system after
//     each intervention, and
//  3. returns a minimal explanation: the PVTs whose composed
//     transformations bring the malfunction below τ.
//
// Quick start:
//
//	sys := &dataprism.SystemFunc{SystemName: "my-pipeline", Score: score}
//	e := &dataprism.Explainer{System: sys, Tau: 0.3}
//	res, err := e.ExplainGreedy(passing, failing)
//	if err == nil {
//	    fmt.Println(res.ExplanationString()) // the root causes
//	}
//
// The subpackages under internal implement the substrates: the relational
// dataset, statistics, pattern learning, causal coefficients, profiles,
// transformations, graphs, ML models, synthetic pipelines, and the paper's
// case-study workloads.
package dataprism

import (
	"context"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/pvt"
	"repro/internal/transform"
)

// Core data types re-exported for downstream users.
type (
	// Dataset is the columnar relational table DataPrism profiles and
	// transforms.
	Dataset = dataset.Dataset
	// Column is a typed column of a Dataset.
	Column = dataset.Column
	// Kind identifies a column's type (Numeric, Categorical, Text).
	Kind = dataset.Kind
	// Predicate is a conjunctive selection predicate over a Dataset.
	Predicate = dataset.Predicate
	// Clause is one comparison inside a Predicate.
	Clause = dataset.Clause

	// Profile is a parameterized data property with violation semantics.
	Profile = profile.Profile
	// DiscoveryOptions configures profile discovery.
	DiscoveryOptions = profile.Options
	// SampleOptions configures sampled profile fitting with error bounds
	// (DiscoveryOptions.Sample).
	SampleOptions = profile.SampleOptions
	// ProfileBound is the error bound attached to a profile fitted on a
	// sample; retrieve it with ProfileFitBound.
	ProfileBound = profile.Bound

	// Transformation alters a dataset to satisfy a target profile.
	Transformation = transform.Transformation

	// PVT is a Profile-Violation-Transformation triplet.
	PVT = core.PVT
	// Explainer configures and runs the root-cause search.
	Explainer = core.Explainer
	// Result is the outcome of a root-cause search.
	Result = core.Result
	// Step is one logged intervention in a Result's trace.
	Step = core.Step
	// BenefitMode selects the greedy candidate-scoring strategy.
	BenefitMode = core.BenefitMode

	// System is a black-box data-driven system exposing a malfunction score.
	System = pipeline.System
	// SystemFunc adapts a plain scoring function into a System.
	SystemFunc = pipeline.Func
	// ContextSystem is a black-box system whose malfunction score honors a
	// context (cancellation, deadlines, tracing values).
	ContextSystem = pipeline.ContextSystem
	// ContextSystemFunc adapts a context-aware scoring function into a
	// ContextSystem.
	ContextSystemFunc = pipeline.CtxFunc
	// ExternalSystem treats an external program (CSV on stdin, score on
	// stdout) as the black-box system.
	ExternalSystem = pipeline.External
	// Oracle wraps a System and counts score evaluations.
	Oracle = pipeline.Oracle
	// FallibleSystem is a black-box system exposing the error-aware scoring
	// contract: a measurement failure (timeout, fork error, cancellation) is
	// reported as an error instead of being conflated with a malfunction
	// score, so the engine never caches it and refunds its budget.
	FallibleSystem = pipeline.FallibleSystem
	// FallibleSystemFunc adapts an error-aware scoring function into a
	// FallibleSystem.
	FallibleSystemFunc = pipeline.TryFunc
	// ScoreResult is one error-aware scoring outcome.
	ScoreResult = pipeline.ScoreResult
	// Retry wraps a FallibleSystem with bounded exponential-backoff retries
	// of transient failures.
	Retry = pipeline.Retry
	// Breaker wraps a FallibleSystem with a circuit breaker that fails fast
	// after consecutive transient failures.
	Breaker = pipeline.Breaker
	// FaultInjector deterministically injects faults into a FallibleSystem —
	// the chaos-testing harness.
	FaultInjector = pipeline.FaultInjector

	// EngineStats reports the intervention engine's counters for a search:
	// interventions, memo-cache hits/misses, parallel batches, and the
	// oracle-latency histogram.
	EngineStats = engine.Stats

	// BaselineConfig parameterizes the BugDoc / Anchor / GrpTest baselines.
	BaselineConfig = baselines.Config
)

// Column kinds.
const (
	Numeric     = dataset.Numeric
	Categorical = dataset.Categorical
	Text        = dataset.Text
)

// Benefit modes (ablation knobs for the greedy search).
const (
	BenefitFull          = core.BenefitFull
	BenefitViolationOnly = core.BenefitViolationOnly
	BenefitCoverageOnly  = core.BenefitCoverageOnly
	BenefitRandom        = core.BenefitRandom
)

// ErrNoExplanation is returned when no combination of discriminative PVT
// transformations brings the malfunction score below τ.
var ErrNoExplanation = core.ErrNoExplanation

// ErrBudgetExhausted is returned (possibly wrapped) when a search stops
// because it hit its MaxInterventions budget.
var ErrBudgetExhausted = engine.ErrBudgetExhausted

// ErrTransient marks (via errors.Is) a measurement failure that a retry may
// resolve: a timeout, a fork failure, truncated output, a cancellation.
var ErrTransient = pipeline.ErrTransient

// ErrBreakerOpen marks (via errors.Is) an evaluation rejected without
// running because the circuit breaker is open.
var ErrBreakerOpen = pipeline.ErrBreakerOpen

// AsContextSystem adapts a legacy System into a ContextSystem. Systems that
// additionally implement MalfunctionScoreCtx (like ExternalSystem) keep
// their context-aware path; plain Systems are wrapped with the context
// ignored during scoring.
func AsContextSystem(sys System) ContextSystem { return pipeline.AsContext(sys) }

// AsFallibleSystem adapts a ContextSystem into the error-aware contract.
// Systems that already implement FallibleSystem (like ExternalSystem, even
// through AsContextSystem) keep their precise failure classification; plain
// systems report every returned score as a success, except scores computed
// under an already-cancelled context, which become transient failures.
func AsFallibleSystem(sys ContextSystem) FallibleSystem { return pipeline.AsFallible(sys) }

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return dataset.New() }

// ReadCSVFile loads a dataset from a CSV file with type inference.
func ReadCSVFile(path string, opts dataset.InferOptions) (*Dataset, error) {
	return dataset.ReadCSVFile(path, opts)
}

// CSVInferOptions configures CSV type inference.
type CSVInferOptions = dataset.InferOptions

// DefaultDiscoveryOptions returns the paper's default profile-discovery
// configuration.
func DefaultDiscoveryOptions() DiscoveryOptions { return profile.DefaultOptions() }

// DiscoverProfiles learns the minimal profiles a dataset satisfies.
func DiscoverProfiles(d *Dataset, opts DiscoveryOptions) []Profile {
	return profile.Discover(d, opts)
}

// ProfileFitBound returns the sampling error bound of a profile fitted on a
// sample, or nil when the profile was fitted exactly (or its class never
// samples).
func ProfileFitBound(p Profile) *ProfileBound { return profile.FitBoundOf(p) }

// DiscriminativeProfiles returns the profiles of the passing dataset that
// the failing dataset violates — the candidate root causes of Definition 10.
func DiscriminativeProfiles(pass, fail *Dataset, opts DiscoveryOptions, eps float64) []Profile {
	return profile.Discriminative(pass, fail, opts, eps)
}

// TransformationsFor builds the intervention mechanisms for a profile.
func TransformationsFor(p Profile) []Transformation { return transform.ForProfile(p) }

// PVTClass is the extension point of the PVT catalog: one named profile
// class bundling discovery (Discover) and repair (Transforms). Implement it
// on your own type and RegisterClass it — discovery, transformation
// routing, the CLI's -profiles selector, and report grouping all pick the
// class up without touching any internal package. Implementations may also
// provide DefaultEnabled() bool to require an explicit opt-in via
// DiscoveryOptions.Classes (absent means enabled).
type PVTClass = pvt.Class

// ProfileCodec is the optional codec half of a PVTClass: classes
// implementing it alongside PVTClass can persist their profiles into
// versioned profile artifacts (the `dataprism profile` / `diff` / `watch`
// CLI surface) and reconstruct them later. EncodeProfile must claim only
// the class's own profiles — return (nil, nil) for others — and produce a
// canonical JSON-encodable value (equal profiles marshal to identical
// bytes); DecodeProfile must invert it.
type ProfileCodec = pvt.ProfileCodec

// ProfileDrifter is the optional drift half of a PVTClass: a normalized
// [0,1] magnitude for how far the parameters of the "same" profile (same
// Key) moved between two artifacts. Without it, any parameter change
// reports the generic magnitude 1.
type ProfileDrifter = pvt.ProfileDrifter

// EncodeProfile serializes a profile through its owning class's codec,
// returning the class name and canonical JSON bytes. It fails when no
// registered class with a codec claims the profile.
func EncodeProfile(p Profile) (class string, data []byte, err error) {
	return profile.EncodeProfile(p)
}

// DecodeProfile reconstructs a profile from the named class's wire form.
func DecodeProfile(class string, data []byte) (Profile, error) {
	return profile.DecodeProfile(class, data)
}

// ProfileDriftMagnitude scores the normalized [0,1] parameter drift between
// two spellings of the same profile: 0 when parameters agree, the owning
// class's drift metric when registered, 1 otherwise.
func ProfileDriftMagnitude(class string, old, new Profile) float64 {
	return profile.DriftMagnitude(class, old, new)
}

// RegisterClass adds a PVT class to the process-wide catalog. It fails on a
// duplicate name, leaving the catalog unchanged. Classes additionally
// implementing ProfileCodec (and optionally ProfileDrifter) become
// persistable into profile artifacts.
func RegisterClass(c PVTClass) error { return pvt.Register(c) }

// MustRegisterClass is RegisterClass panicking on error — for registration
// from package init.
func MustRegisterClass(c PVTClass) { pvt.MustRegister(c) }

// Classes returns the full PVT-class catalog (built-in and registered), in
// deterministic name order.
func Classes() []PVTClass { return pvt.All() }

// ClassNames returns the registered PVT-class names, sorted.
func ClassNames() []string { return pvt.Names() }

// LookupClass returns the catalog class registered under name.
func LookupClass(name string) (PVTClass, bool) { return pvt.Lookup(name) }

// ClassDefaultEnabled reports whether a class is discovered without an
// explicit opt-in in DiscoveryOptions.Classes.
func ClassDefaultEnabled(c PVTClass) bool { return pvt.DefaultEnabled(c) }

// ClassOf returns the catalog class name owning a profile, falling back to
// the profile's Type() for unregistered classes.
func ClassOf(p Profile) string { return pvt.ClassOf(p) }

// DiscoverPVTs pairs the discriminative profiles with their transformations.
func DiscoverPVTs(pass, fail *Dataset, opts DiscoveryOptions, eps float64) []*PVT {
	return core.DiscoverPVTs(pass, fail, opts, eps)
}

// Explain is the one-call entry point: it runs the greedy DataPrismGRD
// search with default options and returns the minimal explanation.
func Explain(sys System, tau float64, pass, fail *Dataset) (*Result, error) {
	e := &Explainer{System: sys, Tau: tau}
	return e.ExplainGreedy(pass, fail)
}

// ExplainContext is Explain honoring the caller's context and running
// independent interventions on workers goroutines (0 means GOMAXPROCS).
// The search outcome is identical for any worker count.
func ExplainContext(ctx context.Context, sys ContextSystem, tau float64, workers int, pass, fail *Dataset) (*Result, error) {
	e := &Explainer{ContextSystem: sys, Tau: tau, Workers: workers}
	return e.ExplainGreedyContext(ctx, pass, fail)
}

// VerifyExplanation independently re-verifies a reported explanation: the
// composed transformations must bring the failing dataset to τ or below,
// and (with checkMinimal) no proper subset may suffice.
func VerifyExplanation(sys System, tau float64, fail *Dataset, expl []*PVT, seed int64, checkMinimal bool) (ok bool, oracleCalls int) {
	return core.VerifyExplanation(sys, tau, fail, expl, seed, checkMinimal)
}

// BugDoc runs the BugDoc baseline on pre-discovered PVT candidates.
func BugDoc(cfg BaselineConfig, pvts []*PVT, fail *Dataset) (*Result, error) {
	return baselines.BugDoc(cfg, pvts, fail)
}

// Anchor runs the Anchor baseline on pre-discovered PVT candidates.
func Anchor(cfg BaselineConfig, pvts []*PVT, fail *Dataset) (*Result, error) {
	return baselines.Anchor(cfg, pvts, fail)
}

// GrpTest runs the traditional adaptive group-testing baseline.
func GrpTest(cfg BaselineConfig, pvts []*PVT, fail *Dataset) (*Result, error) {
	return baselines.GrpTest(cfg, pvts, fail)
}
