// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark reports the paper's headline metric (interventions) via
// ReportMetric alongside wall-clock time; `go run ./cmd/prism-tables` and
// `./cmd/prism-figures` print the full rows/series.
package dataprism_test

import (
	"testing"

	"repro/internal/experiments"
)

// benchFigure7 runs one Figure 7 case-study row and reports each
// technique's intervention count.
func benchFigure7(b *testing.B, scenario string) {
	b.Helper()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		for _, row := range experiments.Figure7(1200, 4) {
			if row.Scenario == scenario {
				rows = append(rows, row)
			}
		}
	}
	if len(rows) == 0 {
		b.Fatal("scenario not found")
	}
	last := rows[len(rows)-1]
	for i, tech := range experiments.Techniques {
		c := last.Cells[i]
		if c.NA {
			b.ReportMetric(-1, tech+"-interventions")
		} else {
			b.ReportMetric(float64(c.Interventions), tech+"-interventions")
		}
	}
}

// BenchmarkFigure7Sentiment regenerates the Sentiment row of Figure 7.
func BenchmarkFigure7Sentiment(b *testing.B) { benchFigure7(b, "Sentiment") }

// BenchmarkFigure7Income regenerates the Income row of Figure 7.
func BenchmarkFigure7Income(b *testing.B) { benchFigure7(b, "Income") }

// BenchmarkFigure7Cardio regenerates the Cardiovascular row of Figure 7.
func BenchmarkFigure7Cardio(b *testing.B) { benchFigure7(b, "Cardiovascular") }

// BenchmarkFigure8Attributes regenerates Figure 8 (left): GRD/GT runtime as
// attributes grow. The benchmark time is the whole sweep.
func BenchmarkFigure8Attributes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure8Attributes([]int{10, 100, 400}, 1)
		if len(pts) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkFigure8PVTs regenerates Figure 8 (right): GRD/GT runtime as
// discriminative PVTs grow.
func BenchmarkFigure8PVTs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure8PVTs([]int{10, 1000, 10000}, 1)
		if len(pts) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// reportSweep reports the last point's per-technique interventions.
func reportSweep(b *testing.B, pts []experiments.Point) {
	b.Helper()
	last := pts[len(pts)-1]
	for i, tech := range experiments.Techniques {
		b.ReportMetric(last.Values[i], tech+"-interventions")
	}
}

// BenchmarkFigure9Attributes regenerates Figure 9(a).
func BenchmarkFigure9Attributes(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9Attributes([]int{4, 10, 16}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure9PVTs regenerates Figure 9(b).
func BenchmarkFigure9PVTs(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9PVTs([]int{10, 60, 120}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure9Conjunction regenerates Figure 9(c).
func BenchmarkFigure9Conjunction(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9Conjunction([]int{1, 6, 12}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure9Disjunction regenerates Figure 9(d).
func BenchmarkFigure9Disjunction(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9Disjunction([]int{1, 6, 12}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure6GroupTesting regenerates the Figure 6 toy comparison.
func BenchmarkFigure6GroupTesting(b *testing.B) {
	var gt, rnd float64
	for i := 0; i < b.N; i++ {
		var err error
		gt, rnd, err = experiments.Figure6(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gt, "GT-interventions")
	b.ReportMetric(rnd, "randomGT-interventions")
}

// BenchmarkGRDvsGTAdversarial regenerates the Section 5.2 rank-54 scenario:
// GRD needs 54 interventions, GT stays logarithmic (paper: 54 vs 9).
func BenchmarkGRDvsGTAdversarial(b *testing.B) {
	var grd, gt int
	for i := 0; i < b.N; i++ {
		var err error
		grd, gt, err = experiments.GRDvsGTAdversarial(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(grd), "GRD-interventions")
	b.ReportMetric(float64(gt), "GT-interventions")
}

// BenchmarkAblationBenefit compares the greedy search's intervention count
// under the four benefit-scoring modes (DESIGN.md ablation).
func BenchmarkAblationBenefit(b *testing.B) {
	var counts []int
	for i := 0; i < b.N; i++ {
		var err error
		counts, err = experiments.AblationBenefit(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, name := range []string{"full", "violation", "coverage", "random"} {
		b.ReportMetric(float64(counts[i]), name+"-interventions")
	}
}

// BenchmarkAblationDegree compares the greedy search with and without the
// high-degree-attribute prioritization (DESIGN.md ablation).
func BenchmarkAblationDegree(b *testing.B) {
	var withGraph, withoutGraph float64
	for i := 0; i < b.N; i++ {
		var err error
		withGraph, withoutGraph, err = experiments.AblationDegree(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(withGraph, "with-graph-interventions")
	b.ReportMetric(withoutGraph, "without-graph-interventions")
}

// BenchmarkAblationBisection compares min-bisection against random
// bisection in group testing (DESIGN.md ablation).
func BenchmarkAblationBisection(b *testing.B) {
	var minBis, randBis float64
	for i := 0; i < b.N; i++ {
		var err error
		minBis, randBis, err = experiments.AblationBisection(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(minBis, "min-bisection-interventions")
	b.ReportMetric(randBis, "random-bisection-interventions")
}
