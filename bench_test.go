// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark reports the paper's headline metric (interventions) via
// ReportMetric alongside wall-clock time; `go run ./cmd/prism-tables` and
// `./cmd/prism-figures` print the full rows/series.
package dataprism_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/transform"
)

// benchFigure7 runs one Figure 7 case-study row and reports each
// technique's intervention count.
func benchFigure7(b *testing.B, scenario string) {
	b.Helper()
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		for _, row := range experiments.Figure7(1200, 4) {
			if row.Scenario == scenario {
				rows = append(rows, row)
			}
		}
	}
	if len(rows) == 0 {
		b.Fatal("scenario not found")
	}
	last := rows[len(rows)-1]
	for i, tech := range experiments.Techniques {
		c := last.Cells[i]
		if c.NA {
			b.ReportMetric(-1, tech+"-interventions")
		} else {
			b.ReportMetric(float64(c.Interventions), tech+"-interventions")
		}
	}
}

// BenchmarkFigure7Sentiment regenerates the Sentiment row of Figure 7.
func BenchmarkFigure7Sentiment(b *testing.B) { benchFigure7(b, "Sentiment") }

// BenchmarkFigure7Income regenerates the Income row of Figure 7.
func BenchmarkFigure7Income(b *testing.B) { benchFigure7(b, "Income") }

// BenchmarkFigure7Cardio regenerates the Cardiovascular row of Figure 7.
func BenchmarkFigure7Cardio(b *testing.B) { benchFigure7(b, "Cardiovascular") }

// BenchmarkFigure8Attributes regenerates Figure 8 (left): GRD/GT runtime as
// attributes grow. The benchmark time is the whole sweep.
func BenchmarkFigure8Attributes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure8Attributes([]int{10, 100, 400}, 1)
		if len(pts) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// BenchmarkFigure8PVTs regenerates Figure 8 (right): GRD/GT runtime as
// discriminative PVTs grow.
func BenchmarkFigure8PVTs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure8PVTs([]int{10, 1000, 10000}, 1)
		if len(pts) != 3 {
			b.Fatal("sweep incomplete")
		}
	}
}

// reportSweep reports the last point's per-technique interventions.
func reportSweep(b *testing.B, pts []experiments.Point) {
	b.Helper()
	last := pts[len(pts)-1]
	for i, tech := range experiments.Techniques {
		b.ReportMetric(last.Values[i], tech+"-interventions")
	}
}

// BenchmarkFigure9Attributes regenerates Figure 9(a).
func BenchmarkFigure9Attributes(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9Attributes([]int{4, 10, 16}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure9PVTs regenerates Figure 9(b).
func BenchmarkFigure9PVTs(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9PVTs([]int{10, 60, 120}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure9Conjunction regenerates Figure 9(c).
func BenchmarkFigure9Conjunction(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9Conjunction([]int{1, 6, 12}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure9Disjunction regenerates Figure 9(d).
func BenchmarkFigure9Disjunction(b *testing.B) {
	var pts []experiments.Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure9Disjunction([]int{1, 6, 12}, 2)
	}
	reportSweep(b, pts)
}

// BenchmarkFigure6GroupTesting regenerates the Figure 6 toy comparison.
func BenchmarkFigure6GroupTesting(b *testing.B) {
	var gt, rnd float64
	for i := 0; i < b.N; i++ {
		var err error
		gt, rnd, err = experiments.Figure6(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gt, "GT-interventions")
	b.ReportMetric(rnd, "randomGT-interventions")
}

// BenchmarkGRDvsGTAdversarial regenerates the Section 5.2 rank-54 scenario:
// GRD needs 54 interventions, GT stays logarithmic (paper: 54 vs 9).
func BenchmarkGRDvsGTAdversarial(b *testing.B) {
	var grd, gt int
	for i := 0; i < b.N; i++ {
		var err error
		grd, gt, err = experiments.GRDvsGTAdversarial(7)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(grd), "GRD-interventions")
	b.ReportMetric(float64(gt), "GT-interventions")
}

// BenchmarkAblationBenefit compares the greedy search's intervention count
// under the four benefit-scoring modes (DESIGN.md ablation).
func BenchmarkAblationBenefit(b *testing.B) {
	var counts []int
	for i := 0; i < b.N; i++ {
		var err error
		counts, err = experiments.AblationBenefit(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, name := range []string{"full", "violation", "coverage", "random"} {
		b.ReportMetric(float64(counts[i]), name+"-interventions")
	}
}

// BenchmarkAblationDegree compares the greedy search with and without the
// high-degree-attribute prioritization (DESIGN.md ablation).
func BenchmarkAblationDegree(b *testing.B) {
	var withGraph, withoutGraph float64
	for i := 0; i < b.N; i++ {
		var err error
		withGraph, withoutGraph, err = experiments.AblationDegree(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(withGraph, "with-graph-interventions")
	b.ReportMetric(withoutGraph, "without-graph-interventions")
}

// BenchmarkAblationBisection compares min-bisection against random
// bisection in group testing (DESIGN.md ablation).
func BenchmarkAblationBisection(b *testing.B) {
	var minBis, randBis float64
	for i := 0; i < b.N; i++ {
		var err error
		minBis, randBis, err = experiments.AblationBisection(10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(minBis, "min-bisection-interventions")
	b.ReportMetric(randBis, "random-bisection-interventions")
}

// --- Intervention-engine benchmarks ------------------------------------
//
// These measure the engine substrate itself on a system with ~2 ms oracle
// latency (the regime where parallel evaluation and memoization pay off;
// real external scorers are slower still).

// slowCtxSystem returns a ContextSystem with the given artificial oracle
// latency wrapped around a constant score.
func slowCtxSystem(delay time.Duration) pipeline.ContextSystem {
	return &pipeline.CtxFunc{SystemName: "slow-oracle", Score: func(ctx context.Context, d *dataset.Dataset) float64 {
		time.Sleep(delay)
		return 0.5
	}}
}

// engineBatchCandidates builds n distinct single-row candidate datasets.
func engineBatchCandidates(n int) []*dataset.Dataset {
	out := make([]*dataset.Dataset, n)
	for i := range out {
		out[i] = dataset.New().MustAddNumeric("x", []float64{float64(i)})
	}
	return out
}

// benchEngineBatch times one EvalBatch of 16 distinct candidates.
func benchEngineBatch(b *testing.B, workers int) {
	cands := engineBatchCandidates(16)
	sys := slowCtxSystem(2 * time.Millisecond)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := engine.New(sys, engine.Config{Workers: workers})
		if _, err := ev.EvalBatch(ctx, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatchSequential evaluates 16 independent interventions one
// at a time (Workers=1) on the 2 ms system.
func BenchmarkEngineBatchSequential(b *testing.B) { benchEngineBatch(b, 1) }

// BenchmarkEngineBatchPooled evaluates the same batch on an 8-worker pool;
// the contract is an identical result ≥2× faster.
func BenchmarkEngineBatchPooled(b *testing.B) { benchEngineBatch(b, 8) }

// BenchmarkEngineMemoCold scores 16 candidates with a fresh engine each
// time — every evaluation pays the oracle.
func BenchmarkEngineMemoCold(b *testing.B) {
	cands := engineBatchCandidates(16)
	sys := slowCtxSystem(2 * time.Millisecond)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := engine.New(sys, engine.Config{Workers: 1})
		if _, err := ev.EvalBatch(ctx, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineMemoWarm scores the same 16 candidates against a primed
// engine — every evaluation is a fingerprint-cache hit, no oracle calls.
func BenchmarkEngineMemoWarm(b *testing.B) {
	cands := engineBatchCandidates(16)
	sys := slowCtxSystem(2 * time.Millisecond)
	ctx := context.Background()
	ev := engine.New(sys, engine.Config{Workers: 1})
	if _, err := ev.EvalBatch(ctx, cands); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalBatch(ctx, cands); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if hits := ev.Stats().CacheHits; hits < 16*b.N {
		b.Fatalf("cache hits = %d, want ≥ %d", hits, 16*b.N)
	}
}

// benchEngineGroupTest runs the full DataPrismGT search on a synthetic
// scenario whose oracle sleeps 2 ms, for a given worker count. GT's batches
// are the two bisection halves plus the make-minimal drop set, so the
// end-to-end speedup is bounded by those widths (≈2×), while the search
// outcome stays bit-identical.
func benchEngineGroupTest(b *testing.B, workers int) {
	sc := synth.New(synth.Options{NumPVTs: 32, NumAttrs: 8, Conjunction: 2, CauseTopBenefit: true, Seed: 1})
	cs := &pipeline.CtxFunc{SystemName: "slow-synth", Score: func(ctx context.Context, d *dataset.Dataset) float64 {
		time.Sleep(2 * time.Millisecond)
		return sc.System.MalfunctionScore(d)
	}}
	var res *core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &core.Explainer{ContextSystem: cs, Tau: 0.05, Seed: 1, Workers: workers}
		r, err := e.ExplainGroupTestPVTs(sc.PVTs, sc.Fail)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Interventions), "interventions")
	b.ReportMetric(float64(res.Stats.CacheHits), "cache-hits")
}

// BenchmarkEngineGroupTestWorkers1 is the sequential end-to-end GT search.
func BenchmarkEngineGroupTestWorkers1(b *testing.B) { benchEngineGroupTest(b, 1) }

// BenchmarkEngineGroupTestWorkers8 is the pooled end-to-end GT search; the
// reported interventions must match Workers1 exactly.
func BenchmarkEngineGroupTestWorkers8(b *testing.B) { benchEngineGroupTest(b, 8) }

// --- Dataset substrate benchmarks --------------------------------------
//
// These measure the data side of a search: cloning a candidate dataset,
// re-fingerprinting it for the memo key after a one-column transform, a
// full single-attribute transform apply, and predicate mask evaluation.
// Each runs under two layouts: "chunked" is the default 64Ki-row chunk
// layout; "flat" stores every column in a single chunk — the pre-chunking
// memory model, kept as the in-repo baseline that the chunked numbers in
// BENCH_pr6.json are compared against. The 100k×20 shape was the acceptance
// target of the copy-on-write work (PR 2); the 10M×20 shape is the
// acceptance target of the chunked-storage work and only runs when
// DATAPRISM_BENCH_LARGE is set — it allocates multiple GB and is too heavy
// for the CI -benchtime=1x smoke run.

// cowBenchRows returns the row counts for the dataset-substrate benchmarks.
func cowBenchRows() []int {
	rows := []int{10_000, 100_000}
	if os.Getenv("DATAPRISM_BENCH_LARGE") != "" {
		rows = append(rows, 10_000_000)
	}
	return rows
}

// benchLayout is one chunk-layout configuration of a substrate benchmark.
type benchLayout struct {
	name  string
	csize int // 0 = default chunk size
}

func benchLayouts(rows int) []benchLayout {
	return []benchLayout{{"chunked", 0}, {"flat", rows}}
}

// cowBenchDataset builds a rows×20 dataset: 10 numeric and 10 categorical
// columns, deterministic contents, chunked at csize (0 = default).
func cowBenchDataset(rows, csize int) *dataset.Dataset {
	d := dataset.NewChunked(csize)
	levels := []string{"a", "b", "c", "d"}
	for c := 0; c < 10; c++ {
		nums := make([]float64, rows)
		for i := range nums {
			nums[i] = float64((i*31+c*17)%1000) / 999
		}
		d.MustAddNumeric(fmt.Sprintf("n%d", c), nums)
	}
	for c := 0; c < 10; c++ {
		cats := make([]string, rows)
		for i := range cats {
			cats[i] = levels[(i+c)%len(levels)]
		}
		d.MustAddCategorical(fmt.Sprintf("c%d", c), cats)
	}
	return d
}

// benchSubstrate runs fn once per rows×layout configuration.
func benchSubstrate(b *testing.B, fn func(b *testing.B, d *dataset.Dataset, rows int)) {
	b.Helper()
	for _, rows := range cowBenchRows() {
		for _, lay := range benchLayouts(rows) {
			b.Run(fmt.Sprintf("rows=%d/layout=%s", rows, lay.name), func(b *testing.B) {
				d := cowBenchDataset(rows, lay.csize)
				b.ReportAllocs()
				fn(b, d, rows)
			})
		}
	}
}

// BenchmarkDatasetClone measures Dataset.Clone at search-relevant shapes.
func BenchmarkDatasetClone(b *testing.B) {
	benchSubstrate(b, func(b *testing.B, d *dataset.Dataset, rows int) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = d.Clone()
		}
	})
}

// BenchmarkFingerprintIncremental measures the engine's memo-key cost for a
// candidate dataset that differs from an already-fingerprinted source in a
// single column: clone, write one cell, fingerprint. Under the chunked
// layout the write dirties one 64Ki-row chunk, so the re-fingerprint cost is
// dirty-chunk count × chunk cost plus a cached-partial merge — sublinear in
// rows — while the flat layout re-hashes the whole column.
func BenchmarkFingerprintIncremental(b *testing.B) {
	benchSubstrate(b, func(b *testing.B, d *dataset.Dataset, rows int) {
		_ = d.Fingerprint() // warm the source digests
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cp := d.Clone()
			cp.SetNum("n0", i%rows, 1234.5)
			_ = cp.Fingerprint()
		}
	})
}

// BenchmarkTransformApply measures a full single-attribute intervention the
// way the search runs it: Winsorize one numeric column of a cloned dataset
// and fingerprint the result for the score memo.
func BenchmarkTransformApply(b *testing.B) {
	benchSubstrate(b, func(b *testing.B, d *dataset.Dataset, rows int) {
		_ = d.Fingerprint() // warm the source digests
		_ = d.Stats("n0")   // warm the stats the transform fits on
		tr := &transform.Winsorize{Profile: &profile.DomainNumeric{Attr: "n0", Lo: 0.1, Hi: 0.9}}
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := tr.Apply(d, rng)
			if err != nil {
				b.Fatal(err)
			}
			_ = out.Fingerprint()
		}
	})
}

// BenchmarkPredicateMask measures chunk-at-a-time evaluation of a two-clause
// predicate mask over the full dataset.
func BenchmarkPredicateMask(b *testing.B) {
	benchSubstrate(b, func(b *testing.B, d *dataset.Dataset, rows int) {
		p := dataset.And(dataset.EqStr("c0", "a"), dataset.CmpNum("n0", dataset.Gt, 0.5))
		var buf []bool
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = p.Mask(d, buf)
		}
	})
}
