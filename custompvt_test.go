package dataprism_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	dataprism "repro"
	"repro/internal/pvt"
	"repro/internal/report"
)

// The test-local monotonicity class mirrors examples/custompvt but is
// default-off and opted in per search, so registering it cannot leak into
// the other facade tests.

type monoProfile struct{ Attr string }

func (p *monoProfile) Type() string         { return "zz-monotone-test" }
func (p *monoProfile) Attributes() []string { return []string{p.Attr} }
func (p *monoProfile) Key() string          { return "zz-monotone-test(" + p.Attr + ")" }
func (p *monoProfile) String() string       { return "⟨Monotone, " + p.Attr + "⟩" }

func (p *monoProfile) SameParams(other dataprism.Profile) bool {
	q, ok := other.(*monoProfile)
	return ok && q.Attr == p.Attr
}

func (p *monoProfile) Violation(d *dataprism.Dataset) float64 {
	vals := d.NumericValues(p.Attr)
	if len(vals) < 2 {
		return 0
	}
	inv := 0
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			inv++
		}
	}
	return float64(inv) / float64(len(vals)-1)
}

type monoSort struct{ prof *monoProfile }

func (t *monoSort) Name() string              { return "sort-ascending" }
func (t *monoSort) Target() dataprism.Profile { return t.prof }
func (t *monoSort) Modifies() []string        { return []string{t.prof.Attr} }

func (t *monoSort) Coverage(d *dataprism.Dataset) float64 { return t.prof.Violation(d) }

func (t *monoSort) Apply(d *dataprism.Dataset, _ *rand.Rand) (*dataprism.Dataset, error) {
	out := d.Clone()
	vals := make([]float64, out.NumRows())
	for i := range vals {
		vals[i] = out.Num(t.prof.Attr, i)
	}
	sort.Float64s(vals)
	for i, v := range vals {
		out.SetNum(t.prof.Attr, i, v)
	}
	return out, nil
}

type monoClass struct{}

func (monoClass) Name() string         { return "zz-monotone-test" }
func (monoClass) Describe() string     { return "test-only monotonicity class" }
func (monoClass) DefaultEnabled() bool { return false }

func (monoClass) Discover(d *dataprism.Dataset, _ dataprism.DiscoveryOptions) []dataprism.Profile {
	var out []dataprism.Profile
	for _, c := range d.Columns() {
		if c.Kind != dataprism.Numeric {
			continue
		}
		p := &monoProfile{Attr: c.Name}
		if d.NumRows() > 1 && p.Violation(d) == 0 {
			out = append(out, p)
		}
	}
	return out
}

func (monoClass) Transforms(p dataprism.Profile) []dataprism.Transformation {
	if q, ok := p.(*monoProfile); ok {
		return []dataprism.Transformation{&monoSort{prof: q}}
	}
	return nil
}

// TestRegisterClassEndToEnd registers a user-defined PVT class through the
// public facade and proves the whole registry-driven path picks it up:
// discovery honors the DefaultEnabled/Classes opt-in, DataPrismGRD reports
// the class's PVT as the minimal explanation, and the report groups it
// under the class name.
func TestRegisterClassEndToEnd(t *testing.T) {
	var c dataprism.PVTClass = monoClass{}
	if err := dataprism.RegisterClass(c); err != nil {
		t.Fatalf("RegisterClass: %v", err)
	}
	t.Cleanup(func() { pvt.Unregister("zz-monotone-test") })
	if err := dataprism.RegisterClass(c); err == nil {
		t.Fatal("duplicate RegisterClass did not fail")
	}
	if got, ok := dataprism.LookupClass("zz-monotone-test"); !ok || dataprism.ClassDefaultEnabled(got) {
		t.Fatalf("LookupClass = %v, %v; want found and default-off", got, ok)
	}

	const n = 300
	rng := rand.New(rand.NewSource(7))
	ts := make([]float64, n)
	reading := make([]float64, n)
	for i := range ts {
		ts[i] = float64(i)
		reading[i] = rng.NormFloat64()
	}
	pass := dataprism.NewDataset().
		MustAddNumeric("timestamp", ts).
		MustAddNumeric("reading", reading)
	fail := pass.Clone()
	for i, j := range rng.Perm(n) {
		fail.SetNum("timestamp", i, ts[j])
	}
	sys := &dataprism.SystemFunc{SystemName: "order-sensitive", Score: func(d *dataprism.Dataset) float64 {
		return (&monoProfile{Attr: "timestamp"}).Violation(d)
	}}

	// Default-off: the search must NOT see the class without an opt-in.
	e := &dataprism.Explainer{System: sys, Tau: 0.05, Seed: 1}
	if res, err := e.ExplainGreedy(pass, fail); err == nil && res.Found {
		t.Fatalf("default-off class leaked into discovery: %s", res.ExplanationString())
	}

	opts := dataprism.DefaultDiscoveryOptions()
	opts.Classes = map[string]bool{"zz-monotone-test": true}
	e = &dataprism.Explainer{System: sys, Tau: 0.05, Seed: 1, Options: &opts}
	res, err := e.ExplainGreedy(pass, fail)
	if err != nil {
		t.Fatalf("ExplainGreedy: %v", err)
	}
	if !res.Found || len(res.Explanation) != 1 {
		t.Fatalf("explanation = %s, want exactly the monotone PVT", res.ExplanationString())
	}
	p := res.Explanation[0]
	if _, ok := p.Profile.(*monoProfile); !ok {
		t.Fatalf("explanation profile is %T, want *monoProfile", p.Profile)
	}
	if got := dataprism.ClassOf(p.Profile); got != "zz-monotone-test" {
		t.Errorf("ClassOf = %q, want zz-monotone-test", got)
	}
	if res.FinalScore > 0.05 {
		t.Errorf("final score = %g, want ≤ tau", res.FinalScore)
	}

	md := report.Summary{SystemName: sys.Name(), Tau: 0.05, FailScore: res.InitialScore, Result: res}.Markdown()
	if !strings.Contains(md, "- **zz-monotone-test**") {
		t.Errorf("markdown report does not group by the custom class:\n%s", md)
	}
}
